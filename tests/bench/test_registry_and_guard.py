"""The benchmark registry lifecycle and the shared floor guard."""

from __future__ import annotations

import pytest

from repro.bench.guard import (
    MemoryDecision,
    arm_floor,
    available_cpus,
    available_memory_bytes,
    check_memory,
)
from repro.bench.registry import (
    Benchmark,
    FloorSpec,
    assert_floor,
    benchmark,
    check_floor,
    create_benchmark,
    registered_benchmarks,
    run_benchmark,
    select_benchmarks,
)


class LifecycleProbe(Benchmark):
    """Counts lifecycle calls and returns a fixed metric."""

    name = "test/lifecycle-probe"
    description = "probe"
    default_repeats = 2
    default_warmup = True

    def __init__(self) -> None:
        self.setup_calls = 0
        self.run_calls = 0
        self.teardown_calls = 0

    def setup(self) -> None:
        self.setup_calls += 1

    def run(self):
        self.run_calls += 1
        return {"answer": 42.0}

    def teardown(self) -> None:
        self.teardown_calls += 1


class TestLifecycle:
    def test_setup_warmup_repeats_teardown(self):
        probe = LifecycleProbe()
        result = run_benchmark(probe)
        assert probe.setup_calls == 1
        assert probe.run_calls == 3  # 1 warm-up + 2 timed
        assert probe.teardown_calls == 1
        assert result.repeats == 2
        assert len(result.wall_seconds) == 2
        assert result.best_seconds <= result.mean_seconds
        assert result.metrics == {"answer": 42.0}
        assert result.floor is None and not result.floored

    def test_explicit_repeats_and_warmup_override(self):
        probe = LifecycleProbe()
        run_benchmark(probe, repeats=4, warmup=False)
        assert probe.run_calls == 4

    def test_teardown_runs_even_when_run_raises(self):
        class Exploding(LifecycleProbe):
            name = "test/exploding"

            def run(self):
                raise RuntimeError("boom")

        probe = Exploding()
        with pytest.raises(RuntimeError):
            run_benchmark(probe, warmup=False)
        assert probe.teardown_calls == 1

    def test_rss_captured_on_linux(self):
        result = run_benchmark(LifecycleProbe())
        assert result.rss_peak_bytes is None or result.rss_peak_bytes > 0


class TestRegistry:
    def test_builtin_suites_are_registered(self):
        names = registered_benchmarks()
        for expected in (
            "engine/round",
            "gossip/compressed",
            "gossip/sparse",
            "gossip/scaling-sweep",
            "topology/dynamic-cache",
            "orchestrator/pool",
            "checkpoint/roundtrip",
            "game/shapley-mc",
            "privacy/noise-rows",
        ):
            assert expected in names
        assert names == sorted(names)

    def test_select_by_substring(self):
        assert select_benchmarks(["gossip"]) == [
            "gossip/compressed",
            "gossip/scaling-sweep",
            "gossip/sparse",
        ]
        assert select_benchmarks([]) == registered_benchmarks()

    def test_create_unknown_name_raises(self):
        with pytest.raises(KeyError, match="no benchmark named"):
            create_benchmark("nope/nothing")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @benchmark
            class Duplicate(Benchmark):  # noqa: F811 - deliberately clashing
                name = "engine/round"

                def run(self):
                    return {}

    def test_unnamed_registration_rejected(self):
        with pytest.raises(ValueError, match="non-empty 'name'"):

            @benchmark
            class Nameless(Benchmark):
                def run(self):
                    return {}


class TestGuard:
    def test_reduced_scale_never_arms(self):
        decision = arm_floor(full_scale=False, min_cpus=0)
        assert not decision.armed
        assert "reduced scale" in decision.reason

    def test_cpu_requirement(self):
        decision = arm_floor(full_scale=True, min_cpus=available_cpus() + 1)
        assert not decision.armed
        assert "CPU" in decision.reason

    def test_baseline_signal_requirement(self):
        decision = arm_floor(
            full_scale=True,
            min_cpus=1,
            baseline_seconds=0.001,
            min_baseline_seconds=0.5,
        )
        assert not decision.armed
        assert "too short" in decision.reason

    def test_arms_when_all_conditions_hold(self):
        decision = arm_floor(
            full_scale=True,
            min_cpus=1,
            baseline_seconds=2.0,
            min_baseline_seconds=0.5,
        )
        assert decision.armed and bool(decision)


class FlooredProbe(Benchmark):
    """A suite whose floor outcome is controlled by the test."""

    name = "test/floored-probe"
    description = "floored probe"
    floor = FloorSpec(metric="speedup", minimum=5.0, min_cpus=1)
    default_repeats = 1
    default_warmup = False

    def __init__(self, speedup: float, full_scale: bool = True) -> None:
        self._speedup = speedup
        self._full_scale = full_scale

    def run(self):
        return {"speedup": self._speedup}

    def floor_context(self, metrics):
        return self._full_scale, None


class TestFloors:
    def test_armed_floor_passes_and_fails(self):
        passing = run_benchmark(FlooredProbe(speedup=9.0))
        assert passing.floor["armed"] and passing.floor["passed"]
        assert_floor(passing)  # no raise

        failing = run_benchmark(FlooredProbe(speedup=1.5))
        assert failing.floor["armed"] and failing.floor["passed"] is False
        with pytest.raises(AssertionError, match="fell below the declared floor"):
            assert_floor(failing)

    def test_disarmed_floor_never_fails(self, capsys):
        result = run_benchmark(FlooredProbe(speedup=0.1, full_scale=False))
        assert result.floor["armed"] is False
        assert result.floor["passed"] is None
        assert_floor(result)  # prints the reason instead of raising
        assert "floor not armed" in capsys.readouterr().out

    def test_missing_metric_fails_when_armed(self):
        class NoMetric(FlooredProbe):
            name = "test/floored-no-metric"

            def run(self):
                return {}

        decision, payload = check_floor(NoMetric(speedup=0.0), {})
        assert decision.armed and payload["passed"] is False


class TestMemoryGuard:
    def test_available_memory_reads_meminfo(self):
        available = available_memory_bytes()
        # /proc/meminfo exists on the Linux CI hosts; elsewhere None is fine.
        assert available is None or available > 0

    def test_tiny_requirement_fits(self):
        decision = check_memory(1024)
        assert decision.fits and bool(decision)
        assert decision.required_bytes >= 1024

    def test_absurd_requirement_does_not_fit(self):
        if available_memory_bytes() is None:
            pytest.skip("no memory availability signal on this platform")
        decision = check_memory(1 << 60)  # an exbibyte
        assert not decision.fits and not bool(decision)
        assert "available" in decision.reason

    def test_unknown_availability_errs_toward_running(self):
        decision = MemoryDecision(
            fits=True, reason="", required_bytes=10, available_bytes=None
        )
        assert bool(decision)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            check_memory(-1)
        with pytest.raises(ValueError):
            check_memory(100, safety_factor=0.5)


class TestMemorySkip:
    def test_oversized_suite_skips_not_fails(self):
        class Gigantic(LifecycleProbe):
            name = "test/gigantic"

            def required_memory_bytes(self):
                return 1 << 60

        probe = Gigantic()
        result = run_benchmark(probe)
        if available_memory_bytes() is None:
            pytest.skip("no memory availability signal on this platform")
        assert result.skipped
        assert result.skip_reason and "available" in result.skip_reason
        assert result.repeats == 0
        # setup/run never execute for a skipped suite.
        assert probe.setup_calls == 0 and probe.run_calls == 0

    def test_fitting_suite_runs_normally(self):
        class Modest(LifecycleProbe):
            name = "test/modest"

            def required_memory_bytes(self):
                return 1024

        result = run_benchmark(Modest())
        assert not result.skipped and result.skip_reason is None

    def test_notes_flow_into_result(self):
        class Noted(LifecycleProbe):
            name = "test/noted"

            def notes(self):
                return {"skip@262144": "needs 48 GiB"}

        result = run_benchmark(Noted())
        assert result.notes == {"skip@262144": "needs 48 GiB"}
