"""End-to-end compressed gossip: engines, traffic, intervals, peer selection.

The codec kernels are property-tested in
``tests/properties/test_property_compression.py``; here the full
communication stack runs under compression:

* loop and vectorized engines follow the same trajectory and account the
  same traffic for every lossy codec;
* ``communication_interval`` skips gossip (and its traffic) on off-rounds;
* ``shift_one`` replaces the topology with the rotating matching of the
  circle method (Bagua's low-precision peer selection);
* top-k actually delivers the advertised ≥4x wire-byte reduction;
* the ``compression`` knob threads from :class:`ExperimentSpec` through the
  harness into the algorithm config.
"""

import numpy as np
import pytest

from repro.baselines import DMSGD
from repro.core.config import AlgorithmConfig, PDSLConfig
from repro.core.pdsl import PDSL
from repro.data.partition import partition_dirichlet
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier
from repro.simulation.runner import EvaluationConfig, run_decentralized
from repro.topology.graphs import ring_graph
from repro.topology.schedule import ShiftOneSchedule, churn_schedule

NUM_AGENTS = 5
ROUNDS = 4

LOSSY_CODECS = [
    {"codec": "fp16"},
    {"codec": "int8"},
    {"codec": "topk", "k": 3},
    {"codec": "randomk", "k": 3},
]


def build(algorithm="DMSGD", backend="vectorized", compression=None, num_agents=NUM_AGENTS):
    topology = ring_graph(num_agents)
    data = make_classification_dataset(
        400, num_features=8, num_classes=4, cluster_std=0.6, seed=1
    )
    rng = np.random.default_rng(1)
    shards = partition_dirichlet(
        data, num_agents, alpha=0.5, rng=rng, min_samples_per_agent=8
    ).shards
    net = make_linear_classifier(8, 4, seed=0)
    common = dict(
        learning_rate=0.1,
        sigma=0.1,
        clip_threshold=1.0,
        batch_size=16,
        seed=7,
        backend=backend,
        compression=compression,
    )
    if algorithm == "PDSL":
        config = PDSLConfig(momentum=0.5, shapley_permutations=2, **common)
        validation = data.sample(60, rng)
        return PDSL(net, topology, shards, config, validation=validation), data
    config = AlgorithmConfig(momentum=0.5, **common)
    return DMSGD(net, topology, shards, config), data


def run_history(algorithm, backend, compression):
    instance, data = build(algorithm, backend, compression)
    test = data.sample(80, np.random.default_rng(2))
    history = run_decentralized(
        instance,
        num_rounds=ROUNDS,
        evaluation=EvaluationConfig(eval_every=1, test_data=test),
    )
    return instance, history


@pytest.mark.parametrize("compression", LOSSY_CODECS, ids=lambda c: c["codec"])
@pytest.mark.parametrize("algorithm", ["DMSGD", "PDSL"])
class TestCompressedEngineEquivalence:
    """Both engines must agree under every lossy codec (incl. tuple channels)."""

    def test_trajectories_match(self, algorithm, compression):
        loop_alg, loop_history = run_history(algorithm, "loop", compression)
        vec_alg, vec_history = run_history(algorithm, "vectorized", compression)
        assert loop_alg.backend == "loop"
        assert vec_alg.backend == "vectorized"
        for rec_a, rec_b in zip(loop_history.records, vec_history.records):
            assert rec_a.average_train_loss == pytest.approx(
                rec_b.average_train_loss, rel=1e-9, abs=1e-12
            )
            assert rec_a.test_accuracy == pytest.approx(rec_b.test_accuracy, abs=1e-12)
        np.testing.assert_allclose(loop_alg.state, vec_alg.state, rtol=1e-9, atol=1e-12)
        # Error-feedback residuals are part of the trajectory too.
        loop_res = loop_alg._compression_state._residuals
        vec_res = vec_alg._compression_state._residuals
        assert sorted(loop_res) == sorted(vec_res)
        for channel in loop_res:
            np.testing.assert_allclose(
                loop_res[channel], vec_res[channel], rtol=1e-9, atol=1e-12
            )

    def test_traffic_accounting_matches_exactly(self, algorithm, compression):
        loop_alg, _ = run_history(algorithm, "loop", compression)
        vec_alg, _ = run_history(algorithm, "vectorized", compression)
        loop_traffic = loop_alg.network.traffic_summary()
        vec_traffic = vec_alg.network.traffic_summary()
        assert loop_traffic["messages_sent"] == vec_traffic["messages_sent"]
        assert loop_traffic["floats_sent"] == vec_traffic["floats_sent"]
        assert loop_traffic["bytes_sent"] == vec_traffic["bytes_sent"]
        assert loop_traffic["traffic_by_tag"] == vec_traffic["traffic_by_tag"]
        assert loop_traffic["bytes_by_tag"] == vec_traffic["bytes_by_tag"]


class TestCommunicationInterval:
    @pytest.mark.parametrize("backend", ["loop", "vectorized"])
    def test_interval_halves_gossip_traffic(self, backend):
        every, _ = run_history("DMSGD", backend, {"codec": "int8"})
        strided, _ = run_history(
            "DMSGD", backend, {"codec": "int8", "communication_interval": 2}
        )
        # ROUNDS = 4: gossip fires on rounds 0 and 2 only — exactly half.
        assert strided.network.bytes_sent * 2 == every.network.bytes_sent
        assert strided.network.floats_sent * 2 == every.network.floats_sent

    def test_off_rounds_still_take_local_steps(self):
        instance, _ = build(compression={"codec": "identity", "communication_interval": 3})
        before = instance.state.copy()
        instance.run_round()  # round 0 gossips
        instance.run_round()  # round 1 is local-only
        assert not np.array_equal(instance.state, before)
        assert instance.gossip_now(0) and not instance.gossip_now(1)

    def test_interval_trajectory_engine_equivalence(self):
        compression = {"codec": "topk", "k": 3, "communication_interval": 2}
        loop_alg, _ = run_history("DMSGD", "loop", compression)
        vec_alg, _ = run_history("DMSGD", "vectorized", compression)
        np.testing.assert_allclose(loop_alg.state, vec_alg.state, rtol=1e-9, atol=1e-12)


class TestShiftOnePeerSelection:
    @pytest.mark.parametrize("num_agents", [4, 5, 8])
    def test_rotation_covers_every_pair_exactly_once(self, num_agents):
        schedule = ShiftOneSchedule(ring_graph(num_agents))
        n_even = num_agents + (num_agents % 2)
        assert schedule.period == n_even - 1
        seen = set()
        for round_index in range(schedule.period):
            pairs = schedule.pairs_at(round_index)
            flat = [agent for pair in pairs for agent in pair]
            assert len(flat) == len(set(flat))  # a matching: each agent once
            seen.update(pairs)
        # The circle method visits every unordered pair exactly once per period.
        expected = {
            (i, j) for i in range(num_agents) for j in range(i + 1, num_agents)
        }
        assert seen == expected

    def test_round_matrices_are_doubly_stochastic(self):
        schedule = ShiftOneSchedule(ring_graph(6))
        for round_index in range(schedule.period):
            topology = schedule.topology_at(round_index)
            w = topology.mixing_operator("dense").toarray()
            np.testing.assert_allclose(w.sum(axis=0), 1.0)
            np.testing.assert_allclose(w.sum(axis=1), 1.0)
            np.testing.assert_array_equal(w, w.T)

    def test_shift_one_runs_on_both_engines(self):
        compression = {"codec": "int8", "peer_selection": "shift_one"}
        loop_alg, _ = run_history("DMSGD", "loop", compression)
        vec_alg, _ = run_history("DMSGD", "vectorized", compression)
        assert isinstance(loop_alg.schedule, ShiftOneSchedule)
        np.testing.assert_allclose(loop_alg.state, vec_alg.state, rtol=1e-9, atol=1e-12)
        assert (
            loop_alg.network.traffic_summary() == vec_alg.network.traffic_summary()
        )

    def test_shift_one_rejects_dynamic_topologies(self):
        topology = ring_graph(6)
        data = make_classification_dataset(200, num_features=8, num_classes=4, seed=0)
        shards = partition_dirichlet(
            data, 6, alpha=0.5, rng=np.random.default_rng(0), min_samples_per_agent=8
        ).shards
        config = AlgorithmConfig(
            sigma=0.1,
            batch_size=8,
            compression={"codec": "int8", "peer_selection": "shift_one"},
        )
        schedule = churn_schedule(topology, churn_rate=0.2, rejoin_rate=0.5, seed=0)
        with pytest.raises(ValueError, match="shift_one"):
            DMSGD(make_linear_classifier(8, 4, seed=0), schedule, shards, config)


class TestWireByteReduction:
    def test_topk_cuts_bytes_at_least_4x(self):
        dense, _ = run_history("DMSGD", "vectorized", None)
        # d = 8 * 4 + 4 = 36 -> k = d // 10 = 3: 36 B/message vs 288 B dense.
        topk, _ = run_history("DMSGD", "vectorized", {"codec": "topk"})
        assert dense.network.bytes_sent >= 4 * topk.network.bytes_sent
        # The float accounting (legacy metric) still reflects the sparsity.
        assert dense.network.floats_sent > topk.network.floats_sent


class TestSpecThreading:
    def test_compression_reaches_the_algorithm_config(self):
        from repro.experiments.harness import build_algorithm, build_experiment_components
        from repro.experiments.specs import fast_spec

        spec = fast_spec(
            num_agents=4,
            num_rounds=2,
            algorithms=["DMSGD"],
            compression={"codec": "topk", "k": 4, "communication_interval": 2},
        )
        components = build_experiment_components(spec)
        algorithm = build_algorithm("DMSGD", components)
        assert algorithm.compression_config.codec == "topk"
        assert algorithm.compression_config.k == 4
        assert algorithm.compression_config.communication_interval == 2
        assert algorithm.codec.describe() == "topk(k=4)"

    def test_spec_dict_roundtrip_preserves_compression(self):
        from repro.experiments.specs import fast_spec, spec_from_dict, spec_to_dict

        spec = fast_spec(compression={"codec": "int8"})
        payload = spec_to_dict(spec)
        assert payload["compression"] == {"codec": "int8"}
        assert spec_from_dict(payload) == spec

    def test_spec_rejects_invalid_compression(self):
        from repro.experiments.specs import fast_spec

        with pytest.raises(ValueError, match="codec must be one of"):
            fast_spec(compression={"codec": "bzip2"})
        with pytest.raises(ValueError, match="unknown"):
            fast_spec(compression={"codec": "topk", "sparsity": 2})

    def test_grid_override_can_sweep_compression(self):
        from repro.experiments.specs import ExperimentGrid, fast_spec

        grid = ExperimentGrid(
            base=fast_spec(algorithms=["DMSGD"]),
            overrides=[{}, {"compression": {"codec": "topk"}}],
        )
        jobs = grid.jobs()
        assert len(jobs) == 2
        assert jobs[0].spec.compression is None
        assert jobs[1].spec.compression == {"codec": "topk"}
