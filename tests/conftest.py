"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier, make_mlp
from repro.topology.graphs import fully_connected_graph, ring_graph

#: Constructor table for :func:`make_small_fleet`: name -> (class, config
#: class, extra config kwargs).  The same six algorithms every equivalence
#: suite covers, with the hyper-parameters the engine-equivalence tests use.
SMALL_FLEET_ALGORITHMS = None  # populated lazily to keep conftest import light


def _small_fleet_algorithms():
    global SMALL_FLEET_ALGORITHMS
    if SMALL_FLEET_ALGORITHMS is None:
        from repro.baselines import DMSGD, DPCGA, DPDPSGD, DPNetFleet, Muffliato
        from repro.core.config import (
            AlgorithmConfig,
            CGAConfig,
            MuffliatoConfig,
            NetFleetConfig,
            PDSLConfig,
        )
        from repro.core.pdsl import PDSL

        SMALL_FLEET_ALGORITHMS = {
            "DP-DPSGD": (DPDPSGD, AlgorithmConfig, {}),
            "DMSGD": (DMSGD, AlgorithmConfig, {"momentum": 0.5}),
            "MUFFLIATO": (Muffliato, MuffliatoConfig, {"gossip_steps": 2}),
            "DP-CGA": (DPCGA, CGAConfig, {"momentum": 0.5}),
            "DP-NET-FLEET": (DPNetFleet, NetFleetConfig, {"local_steps": 2}),
            "PDSL": (PDSL, PDSLConfig, {"momentum": 0.5, "shapley_permutations": 2}),
        }
    return SMALL_FLEET_ALGORITHMS


@pytest.fixture
def make_small_fleet():
    """Factory for a small, fully constructed algorithm fleet.

    Returns ``fn(name, topology=None, **config_overrides) -> (algorithm,
    test_dataset)`` — the ring/MLP-style setup the equivalence suites share
    (Gaussian-cluster data, Dirichlet partition, linear model, seed-pinned
    config), without each suite re-copying the boilerplate.  ``topology``
    accepts a :class:`Topology`, a :class:`TopologySchedule`, or ``None``
    (a 5-agent ring).  Identical arguments build identically-seeded fleets,
    so two calls produce bit-identical trajectories.
    """
    from repro.core.pdsl import PDSL
    from repro.data.partition import partition_dirichlet

    def build(name, topology=None, model="linear", **config_overrides):
        cls, config_cls, extra = _small_fleet_algorithms()[name]
        if topology is None:
            topology = ring_graph(5)
        num_agents = topology.num_agents
        data = make_classification_dataset(
            400, num_features=8, num_classes=4, cluster_std=0.6, seed=1
        )
        rng = np.random.default_rng(1)
        shards = partition_dirichlet(
            data, num_agents, alpha=0.5, rng=rng, min_samples_per_agent=8
        ).shards
        validation = data.sample(60, rng)
        test = data.sample(80, np.random.default_rng(2))
        if model == "linear":
            net = make_linear_classifier(8, 4, seed=0)
        else:
            net = make_mlp(8, 4, hidden_sizes=(8,), seed=0)
        defaults = dict(
            learning_rate=0.1,
            sigma=0.1,
            clip_threshold=1.0,
            batch_size=16,
            seed=7,
        )
        config = config_cls(**{**defaults, **extra, **config_overrides})
        if cls is PDSL:
            algorithm = cls(net, topology, shards, config, validation=validation)
        else:
            algorithm = cls(net, topology, shards, config)
        return algorithm, test

    return build


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dataset() -> Dataset:
    """A small, easy Gaussian-cluster classification dataset (4 classes, 12 features)."""
    return make_classification_dataset(
        num_samples=240,
        num_features=12,
        num_classes=4,
        cluster_std=0.8,
        class_separation=4.0,
        seed=3,
    )


@pytest.fixture
def tiny_dataset() -> Dataset:
    """An even smaller dataset for expensive (per-round) algorithm tests."""
    return make_classification_dataset(
        num_samples=120,
        num_features=8,
        num_classes=3,
        cluster_std=0.7,
        class_separation=4.0,
        seed=5,
    )


@pytest.fixture
def linear_model(small_dataset: Dataset):
    """A linear classifier matched to ``small_dataset``."""
    return make_linear_classifier(small_dataset.input_shape[0], small_dataset.num_classes, seed=0)


@pytest.fixture
def tiny_model(tiny_dataset: Dataset):
    """A linear classifier matched to ``tiny_dataset``."""
    return make_linear_classifier(tiny_dataset.input_shape[0], tiny_dataset.num_classes, seed=0)


@pytest.fixture
def mlp_model(small_dataset: Dataset):
    """A small MLP matched to ``small_dataset``."""
    return make_mlp(small_dataset.input_shape[0], small_dataset.num_classes, hidden_sizes=(16,), seed=0)


@pytest.fixture
def full_topology_4():
    """Fully connected topology on 4 agents."""
    return fully_connected_graph(4)


@pytest.fixture
def ring_topology_5():
    """Ring topology on 5 agents."""
    return ring_graph(5)
