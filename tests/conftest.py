"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier, make_mlp
from repro.topology.graphs import fully_connected_graph, ring_graph


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dataset() -> Dataset:
    """A small, easy Gaussian-cluster classification dataset (4 classes, 12 features)."""
    return make_classification_dataset(
        num_samples=240,
        num_features=12,
        num_classes=4,
        cluster_std=0.8,
        class_separation=4.0,
        seed=3,
    )


@pytest.fixture
def tiny_dataset() -> Dataset:
    """An even smaller dataset for expensive (per-round) algorithm tests."""
    return make_classification_dataset(
        num_samples=120,
        num_features=8,
        num_classes=3,
        cluster_std=0.7,
        class_separation=4.0,
        seed=5,
    )


@pytest.fixture
def linear_model(small_dataset: Dataset):
    """A linear classifier matched to ``small_dataset``."""
    return make_linear_classifier(small_dataset.input_shape[0], small_dataset.num_classes, seed=0)


@pytest.fixture
def tiny_model(tiny_dataset: Dataset):
    """A linear classifier matched to ``tiny_dataset``."""
    return make_linear_classifier(tiny_dataset.input_shape[0], tiny_dataset.num_classes, seed=0)


@pytest.fixture
def mlp_model(small_dataset: Dataset):
    """A small MLP matched to ``small_dataset``."""
    return make_mlp(small_dataset.input_shape[0], small_dataset.num_classes, hidden_sizes=(16,), seed=0)


@pytest.fixture
def full_topology_4():
    """Fully connected topology on 4 agents."""
    return fully_connected_graph(4)


@pytest.fixture
def ring_topology_5():
    """Ring topology on 5 agents."""
    return ring_graph(5)
