"""Tests for the shared DecentralizedAlgorithm infrastructure."""

import numpy as np
import pytest

from repro.core.base import DecentralizedAlgorithm
from repro.core.config import AlgorithmConfig
from repro.data.partition import partition_iid
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier
from repro.topology.graphs import fully_connected_graph, ring_graph


class NoOpAlgorithm(DecentralizedAlgorithm):
    """An algorithm that does nothing per round (for testing shared machinery)."""

    name = "noop"

    def step(self, round_index: int) -> None:  # pragma: no cover - trivially empty
        pass


@pytest.fixture
def components():
    data = make_classification_dataset(200, num_features=6, num_classes=4, seed=0)
    topology = fully_connected_graph(4)
    shards = partition_iid(data, 4, np.random.default_rng(0)).shards
    model = make_linear_classifier(6, 4, seed=0)
    config = AlgorithmConfig(learning_rate=0.1, sigma=0.5, clip_threshold=1.0, batch_size=16, seed=3)
    return model, topology, shards, config, data


class TestConstruction:
    def test_all_agents_start_from_same_model(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        for params in algorithm.params[1:]:
            np.testing.assert_array_equal(params, algorithm.params[0])

    def test_momenta_start_at_zero(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        for momentum in algorithm.momenta:
            assert np.all(momentum == 0.0)

    def test_shard_count_mismatch_rejected(self, components):
        model, topology, shards, config, _ = components
        with pytest.raises(ValueError):
            NoOpAlgorithm(model, topology, shards[:-1], config)

    def test_empty_shard_rejected(self, components):
        from repro.data.dataset import Dataset

        model, topology, shards, config, _ = components
        bad = list(shards)
        bad[2] = Dataset(np.zeros((0, 6)), np.zeros(0))
        with pytest.raises(ValueError):
            NoOpAlgorithm(model, topology, bad, config)

    def test_sigma_resolved_from_config(self, components):
        model, topology, shards, _, _ = components
        config = AlgorithmConfig(epsilon=0.5, batch_size=16)
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        np.testing.assert_allclose(algorithm.sigma, config.resolve_sigma())


class TestGradientHelpers:
    def test_local_gradient_matches_model(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        batch = (shards[0].inputs[:8], shards[0].labels[:8])
        grad = algorithm.local_gradient(0, algorithm.params[0], batch)
        _, expected = model.loss_and_gradient(batch[0], batch[1], params=algorithm.params[0])
        np.testing.assert_allclose(grad, expected)

    def test_privatize_clips_norm_without_noise(self, components):
        model, topology, shards, _, _ = components
        config = AlgorithmConfig(sigma=0.0, clip_threshold=0.5, batch_size=16)
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        big = np.full(algorithm.dimension, 10.0)
        out = algorithm.privatize(0, big)
        np.testing.assert_allclose(np.linalg.norm(out), 0.5)

    def test_privatize_adds_noise(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        v = np.zeros(algorithm.dimension)
        assert not np.allclose(algorithm.privatize(0, v), 0.0)

    def test_different_agents_have_independent_noise(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        v = np.zeros(algorithm.dimension)
        assert not np.allclose(algorithm.privatize(0, v), algorithm.privatize(1, v))

    def test_draw_batches_one_per_agent(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        batches = algorithm.draw_batches()
        assert len(batches) == 4
        for x, y in batches:
            assert x.shape[0] == y.shape[0] <= 16


class TestGossipAndEvaluation:
    def test_gossip_average_preserves_mean(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        rng = np.random.default_rng(0)
        vectors = [rng.normal(size=algorithm.dimension) for _ in range(4)]
        mixed = algorithm.gossip_average(vectors)
        np.testing.assert_allclose(
            np.mean(mixed, axis=0), np.mean(vectors, axis=0), atol=1e-12
        )

    def test_gossip_average_reduces_consensus_distance(self, components):
        from repro.simulation.metrics import consensus_distance

        model, _, shards, config, _ = components
        topology = ring_graph(4)
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        rng = np.random.default_rng(1)
        vectors = [rng.normal(size=algorithm.dimension) for _ in range(4)]
        mixed = algorithm.gossip_average(vectors)
        assert consensus_distance(mixed) < consensus_distance(vectors)

    def test_average_parameters_is_mean(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        algorithm.params = [np.full(algorithm.dimension, float(i)) for i in range(4)]
        np.testing.assert_allclose(algorithm.average_parameters(), 1.5)

    def test_consensus_zero_initially(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        assert algorithm.consensus() == 0.0

    def test_train_loss_and_accuracy_bounds(self, components):
        model, topology, shards, config, data = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        loss = algorithm.average_train_loss()
        assert loss > 0.0
        acc_mean = algorithm.test_accuracy(data, mode="mean_agent")
        acc_avg = algorithm.test_accuracy(data, mode="average_model")
        assert 0.0 <= acc_mean <= 1.0
        assert 0.0 <= acc_avg <= 1.0
        with pytest.raises(ValueError):
            algorithm.test_accuracy(data, mode="best")

    def test_accuracy_modes_agree_when_params_identical(self, components):
        model, topology, shards, config, data = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        assert algorithm.test_accuracy(data, "mean_agent") == pytest.approx(
            algorithm.test_accuracy(data, "average_model")
        )


class TestPrivacyAccounting:
    def test_accountant_records_rounds_with_epsilon(self, components):
        model, topology, shards, _, _ = components
        config = AlgorithmConfig(epsilon=0.5, batch_size=16)
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        for _ in range(5):
            algorithm.run_round()
        assert algorithm.accountant.num_events == 5
        eps, delta = algorithm.privacy_spent()
        assert eps > 0 and delta > 0

    def test_no_accounting_when_sigma_zero(self, components):
        model, topology, shards, _, _ = components
        config = AlgorithmConfig(sigma=0.0, batch_size=16)
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        algorithm.run_round()
        assert algorithm.accountant.num_events == 0

    def test_rounds_completed_counter(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        for _ in range(3):
            algorithm.run_round()
        assert algorithm.rounds_completed == 3
        assert algorithm.network.current_round == 3


class TestMixingMatrixValidation:
    def test_mutated_mixing_matrix_rejected_at_construction(self, components):
        model, topology, shards, config, _ = components
        topology.mixing_matrix[0, 1] += 0.5  # breaks double stochasticity
        with pytest.raises(ValueError, match="mixing matrix"):
            NoOpAlgorithm(model, topology, shards, config)

    def test_asymmetric_mixing_matrix_rejected_at_construction(self, components):
        model, topology, shards, config, _ = components
        topology.mixing_matrix[0, 1] += 0.1
        topology.mixing_matrix[0, 0] -= 0.1  # rows still sum to 1, not symmetric
        with pytest.raises(ValueError, match="mixing matrix"):
            NoOpAlgorithm(model, topology, shards, config)


class TestFleetStateMatrix:
    def test_state_matrix_shape_and_row_views(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        assert algorithm.state.shape == (4, algorithm.dimension)
        # params[i] is a live view into the state matrix.
        algorithm.params[1] = np.full(algorithm.dimension, 7.0)
        np.testing.assert_array_equal(algorithm.state[1], 7.0)

    def test_params_setter_validates_shape(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        with pytest.raises(ValueError):
            algorithm.params = [np.zeros(algorithm.dimension)] * 3
        with pytest.raises(ValueError):
            algorithm.params = [np.zeros(algorithm.dimension + 1)] * 4

    def test_agent_parameters_returns_copies(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        copies = algorithm.agent_parameters()
        copies[0][:] = 123.0
        assert not np.any(algorithm.state[0] == 123.0)

    def test_momenta_item_assignment_hits_matrix(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        algorithm.momenta[2] = np.ones(algorithm.dimension)
        np.testing.assert_array_equal(algorithm.momentum_state[2], 1.0)


class TestVectorizedHelpers:
    def test_privatize_rows_matches_per_agent_privatize(self, components):
        model, topology, shards, _, _ = components
        config = AlgorithmConfig(learning_rate=0.1, sigma=0.5, clip_threshold=1.0, batch_size=16, seed=3)
        a = NoOpAlgorithm(model, topology, shards, config)
        b = NoOpAlgorithm(model, topology, shards, config)
        rows = np.random.default_rng(0).normal(size=(4, a.dimension)) * 3.0
        vectorized = a.privatize_rows(rows)
        looped = np.stack([b.privatize(i, rows[i]) for i in range(4)], axis=0)
        np.testing.assert_allclose(vectorized, looped, rtol=1e-12, atol=1e-12)

    def test_privatize_rows_with_repeated_owners_advances_stream(self, components):
        model, topology, shards, _, _ = components
        config = AlgorithmConfig(learning_rate=0.1, sigma=0.5, clip_threshold=1.0, batch_size=16, seed=3)
        a = NoOpAlgorithm(model, topology, shards, config)
        b = NoOpAlgorithm(model, topology, shards, config)
        rows = np.zeros((3, a.dimension))
        vectorized = a.privatize_rows(rows, agents=[1, 1, 2])
        first = b.privatize(1, rows[0])
        second = b.privatize(1, rows[1])
        third = b.privatize(2, rows[2])
        np.testing.assert_allclose(vectorized, np.stack([first, second, third]), atol=1e-12)

    def test_privatize_rows_rejects_owner_count_mismatch(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        rows = np.zeros((3, algorithm.dimension))
        with pytest.raises(ValueError, match="owner agents"):
            algorithm.privatize_rows(rows)  # default owners expect 4 rows
        with pytest.raises(ValueError, match="owner agents"):
            algorithm.privatize_rows(rows, agents=[0, 1])

    def test_fleet_cross_gradients_match_pairwise_local_gradients(self, components):
        model, topology, shards, _, _ = components
        config = AlgorithmConfig(sigma=0.0, clip_threshold=100.0, batch_size=16, seed=3)
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        batches = algorithm.draw_batches()
        cross, pair_rows = algorithm.fleet_cross_gradients(batches)
        assert set(pair_rows) == set(algorithm.topology.directed_pairs())
        for (i, j), row in pair_rows.items():
            expected = algorithm.local_gradient(i, algorithm.state[j], batches[i])
            np.testing.assert_allclose(cross[row], expected, rtol=1e-10, atol=1e-12)

    def test_fleet_gradients_matches_local_gradient(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        batches = algorithm.draw_batches()
        fleet = algorithm.fleet_gradients(algorithm.state, batches)
        for agent in range(4):
            expected = algorithm.local_gradient(agent, algorithm.state[agent], batches[agent])
            np.testing.assert_allclose(fleet[agent], expected, rtol=1e-10, atol=1e-12)

    def test_fleet_gradients_handles_ragged_batches(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        batches = algorithm.draw_batches()
        # Truncate one batch so the stacked path cannot apply.
        inputs, labels = batches[2]
        batches[2] = (inputs[:5], labels[:5])
        fleet = algorithm.fleet_gradients(algorithm.state, batches)
        for agent in range(4):
            expected = algorithm.local_gradient(agent, algorithm.state[agent], batches[agent])
            np.testing.assert_allclose(fleet[agent], expected, rtol=1e-10, atol=1e-12)

    def test_mix_rows_matches_gossip_average(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(4, algorithm.dimension))
        mixed = algorithm.mix_rows(matrix)
        expected = algorithm.gossip_average([matrix[i] for i in range(4)])
        np.testing.assert_allclose(mixed, np.stack(expected), atol=1e-12)

    def test_record_fleet_exchange_accounts_directed_edges(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        algorithm.record_fleet_exchange("model", algorithm.dimension)
        summary = algorithm.network.traffic_summary()
        expected_messages = algorithm.topology.num_directed_edges
        assert summary["messages_sent"] == expected_messages
        assert summary["floats_sent"] == expected_messages * algorithm.dimension

    def test_average_train_loss_stacked_matches_per_agent_reference(self, components):
        model, topology, shards, config, _ = components
        algorithm = NoOpAlgorithm(model, topology, shards, config)
        # Spread the agents so per-agent losses genuinely differ.
        rng = np.random.default_rng(9)
        algorithm.state += rng.normal(scale=0.3, size=algorithm.state.shape)
        assert algorithm._stacked is not None  # linear model: stacked path active
        stacked = algorithm.average_train_loss(max_samples_per_agent=16)
        reference = []
        for agent in range(algorithm.num_agents):
            shard = algorithm.shards[agent]
            if len(shard) > 16:
                sub_rng = np.random.default_rng(
                    (config.seed * 1_000_003 + agent) % (2**63 - 1)
                )
                shard = shard.sample(16, sub_rng)
            reference.append(
                model.evaluate_loss(shard.inputs, shard.labels, params=algorithm.state[agent])
            )
        assert stacked == pytest.approx(float(np.mean(reference)), rel=1e-12)

    def test_average_train_loss_subsample_rng_is_stable(self, components):
        # The per-agent evaluation subsample must not depend on training
        # progress or backend: two fresh algorithms at the same state report
        # the same loss.
        model, topology, shards, config, _ = components
        a = NoOpAlgorithm(model, topology, shards, config)
        b = NoOpAlgorithm(model, topology, shards, config)
        a.draw_batches()  # advancing training streams must not perturb evaluation
        assert a.average_train_loss(max_samples_per_agent=8) == b.average_train_loss(
            max_samples_per_agent=8
        )

    def test_mix_rows_dispatches_to_configured_operator(self, components):
        model, _, shards, _, _ = components
        topology = ring_graph(4)
        rows = np.random.default_rng(2).normal(size=(4, model.num_params))
        outputs = {}
        for mixing_backend in ("dense", "sparse"):
            config = AlgorithmConfig(
                sigma=0.0, batch_size=16, mixing_backend=mixing_backend
            )
            algorithm = NoOpAlgorithm(model, topology, shards, config)
            assert algorithm.mixing.format == (
                "csr" if mixing_backend == "sparse" else "dense"
            )
            outputs[mixing_backend] = algorithm.mix_rows(rows)
        np.testing.assert_array_equal(outputs["dense"], outputs["sparse"])
