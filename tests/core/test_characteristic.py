"""Tests for the PDSL characteristic function (eqs. 15-17)."""

import numpy as np
import pytest

from repro.core.characteristic import make_update_characteristic, validation_characteristic
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier


@pytest.fixture
def setup():
    data = make_classification_dataset(200, num_features=6, num_classes=3, cluster_std=0.4, seed=0)
    model = make_linear_classifier(6, 3, seed=0)
    return data, model


class TestValidationCharacteristic:
    def test_accuracy_metric_in_unit_interval(self, setup):
        data, model = setup
        score = validation_characteristic(
            model, model.get_flat_params(), data.inputs, data.labels, metric="accuracy"
        )
        assert 0.0 <= score <= 1.0

    def test_neg_loss_metric_is_negative_loss(self, setup):
        data, model = setup
        score = validation_characteristic(
            model, model.get_flat_params(), data.inputs, data.labels, metric="neg_loss"
        )
        loss = model.evaluate_loss(data.inputs, data.labels)
        np.testing.assert_allclose(score, -loss)

    def test_unknown_metric_rejected(self, setup):
        data, model = setup
        with pytest.raises(ValueError):
            validation_characteristic(model, model.get_flat_params(), data.inputs, data.labels, metric="auc")

    def test_trained_params_score_higher(self, setup):
        data, model = setup
        params = model.get_flat_params()
        for _ in range(60):
            _, grad = model.loss_and_gradient(data.inputs, data.labels, params=params)
            params -= 0.5 * grad
        untrained = validation_characteristic(model, model.get_flat_params(), data.inputs, data.labels)
        trained = validation_characteristic(model, params, data.inputs, data.labels)
        assert trained > untrained


class TestUpdateCharacteristic:
    def test_empty_coalition_is_zero(self, setup):
        data, model = setup
        updates = {0: model.get_flat_params(), 1: model.get_flat_params() + 0.1}
        v = make_update_characteristic(model, updates, data)
        assert v(()) == 0.0

    def test_singleton_coalition_scores_that_update(self, setup):
        data, model = setup
        good_params = model.get_flat_params()
        for _ in range(80):
            _, grad = model.loss_and_gradient(data.inputs, data.labels, params=good_params)
            good_params -= 0.5 * grad
        bad_params = np.zeros_like(good_params)
        v = make_update_characteristic(model, {0: good_params, 1: bad_params}, data)
        assert v((0,)) > v((1,))

    def test_coalition_value_is_average_model_score(self, setup):
        data, model = setup
        a = model.get_flat_params()
        b = a + 1.0
        v = make_update_characteristic(model, {0: a, 1: b}, data)
        averaged = (a + b) / 2
        expected = validation_characteristic(model, averaged, data.inputs, data.labels)
        np.testing.assert_allclose(v((0, 1)), expected)

    def test_unknown_members_ignored(self, setup):
        data, model = setup
        v = make_update_characteristic(model, {0: model.get_flat_params()}, data)
        assert v((0, 99)) == v((0,))

    def test_subsampled_validation_stays_fixed_across_calls(self, setup):
        data, model = setup
        updates = {0: model.get_flat_params(), 1: model.get_flat_params() + 0.5}
        rng = np.random.default_rng(0)
        v = make_update_characteristic(model, updates, data, validation_batch_size=50, rng=rng)
        assert v((0,)) == v((0,))  # same subsample reused, so the game is well defined

    def test_subsample_requires_rng(self, setup):
        data, model = setup
        with pytest.raises(ValueError):
            make_update_characteristic(
                model, {0: model.get_flat_params()}, data, validation_batch_size=10, rng=None
            )

    def test_empty_updates_rejected(self, setup):
        data, model = setup
        with pytest.raises(ValueError):
            make_update_characteristic(model, {}, data)

    def test_empty_validation_rejected(self, setup):
        from repro.data.dataset import Dataset

        _, model = setup
        empty = Dataset(np.zeros((0, 6)), np.zeros(0))
        with pytest.raises(ValueError):
            make_update_characteristic(model, {0: model.get_flat_params()}, empty)
