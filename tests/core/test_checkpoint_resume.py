"""Checkpoint/resume bit-identity for every algorithm on both engines.

The contract under test: interrupting a run at any round boundary, persisting
``state_dict()`` (through a real on-disk checkpoint), rebuilding the
algorithm from scratch and restoring the state must continue the trajectory
**bit for bit** — the resumed run's fleet matrices, random streams, traffic
counters and :class:`TrainingHistory` all equal the uninterrupted run's.
That property is what makes the experiment orchestrator's resume path safe:
a killed sweep loses wall-clock time, never determinism.
"""

import numpy as np
import pytest

from repro.baselines import DMSGD, DPCGA, DPDPSGD, DPNetFleet, Muffliato
from repro.core.config import (
    AlgorithmConfig,
    CGAConfig,
    MuffliatoConfig,
    NetFleetConfig,
    PDSLConfig,
)
from repro.core.pdsl import PDSL
from repro.data.partition import partition_dirichlet
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier
from repro.simulation.checkpoint import latest_checkpoint
from repro.simulation.metrics import histories_equal
from repro.simulation.runner import EvaluationConfig, RunSession, run_decentralized
from repro.topology.graphs import ring_graph
from repro.topology.schedule import DynamicTopologySchedule

NUM_AGENTS = 5
ROUNDS = 4
HALF = ROUNDS // 2

ALGORITHMS = {
    "DP-DPSGD": (DPDPSGD, AlgorithmConfig, {}),
    "DMSGD": (DMSGD, AlgorithmConfig, {"momentum": 0.5}),
    "MUFFLIATO": (Muffliato, MuffliatoConfig, {"gossip_steps": 2}),
    "DP-CGA": (DPCGA, CGAConfig, {"momentum": 0.5}),
    "DP-NET-FLEET": (DPNetFleet, NetFleetConfig, {"local_steps": 2}),
    "PDSL": (PDSL, PDSLConfig, {"momentum": 0.5, "shapley_permutations": 2}),
}

BACKENDS = ("loop", "vectorized")


def build_algorithm(name, backend, dynamic=False, compression=None):
    """A small but complete instance (noise on, momentum on where supported)."""
    cls, config_cls, extra = ALGORITHMS[name]
    topology = ring_graph(NUM_AGENTS)
    if dynamic:
        topology = DynamicTopologySchedule(
            ring_graph(NUM_AGENTS),
            rewire_every=2,
            straggler_fraction=0.2,
            seed=3,
        )
    data = make_classification_dataset(
        300, num_features=6, num_classes=3, cluster_std=0.7, seed=1
    )
    rng = np.random.default_rng(1)
    shards = partition_dirichlet(
        data, NUM_AGENTS, alpha=0.5, rng=rng, min_samples_per_agent=8
    ).shards
    validation = data.sample(40, rng)
    test = data.sample(60, np.random.default_rng(2))
    model = make_linear_classifier(6, 3, seed=0)
    config = config_cls(
        learning_rate=0.1,
        sigma=0.1,
        clip_threshold=1.0,
        batch_size=8,
        seed=7,
        backend=backend,
        compression=compression,
        **extra,
    )
    if cls is PDSL:
        algorithm = cls(model, topology, shards, config, validation=validation)
    else:
        algorithm = cls(model, topology, shards, config)
    return algorithm, test


def assert_same_resumable_state(a, b):
    """Every field state_dict() captures must match exactly between runs."""
    assert np.array_equal(a.state, b.state)
    assert np.array_equal(a.momentum_state, b.momentum_state)
    assert a.rounds_completed == b.rounds_completed
    assert a.accountant.events == b.accountant.events
    assert a.network.messages_sent == b.network.messages_sent
    assert a.network.floats_sent == b.network.floats_sent
    for sampler_a, sampler_b in zip(a.samplers, b.samplers):
        assert sampler_a.num_draws == sampler_b.num_draws
        assert sampler_a.rng.bit_generator.state == sampler_b.rng.bit_generator.state
    for mech_a, mech_b in zip(a.mechanisms, b.mechanisms):
        assert mech_a.rng.bit_generator.state == mech_b.rng.bit_generator.state
    for rng_a, rng_b in zip(a.agent_rngs, b.agent_rngs):
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_resume_bit_identical(name, backend, tmp_path):
    """T rounds straight == checkpoint at T/2 + resume, for every field."""
    straight, test = build_algorithm(name, backend)
    evaluation = EvaluationConfig(eval_every=1, test_data=test)
    history_straight = run_decentralized(straight, ROUNDS, evaluation=evaluation)

    interrupted, test_b = build_algorithm(name, backend)
    first_half = RunSession(
        interrupted,
        ROUNDS,
        evaluation=EvaluationConfig(eval_every=1, test_data=test_b),
        checkpoint_every=HALF,
        checkpoint_dir=tmp_path,
    )
    first_half.run(max_rounds=HALF)
    checkpoint = latest_checkpoint(tmp_path)
    assert checkpoint is not None

    resumed, test_c = build_algorithm(name, backend)
    second_half = RunSession.resume(
        resumed,
        checkpoint,
        evaluation=EvaluationConfig(eval_every=1, test_data=test_c),
    )
    assert second_half.rounds_done == HALF
    history_resumed = second_half.run()

    assert histories_equal(history_straight, history_resumed)
    assert_same_resumable_state(straight, resumed)


@pytest.mark.parametrize("backend", BACKENDS)
def test_resume_bit_identical_under_dynamic_schedule(backend, tmp_path):
    """Resume restores the schedule position too (rewiring + stragglers)."""
    straight, test = build_algorithm("DMSGD", backend, dynamic=True)
    history_straight = run_decentralized(
        straight, ROUNDS, evaluation=EvaluationConfig(test_data=test)
    )
    assert history_straight.event_counts(), "dynamics produced no events"

    interrupted, test_b = build_algorithm("DMSGD", backend, dynamic=True)
    session = RunSession(
        interrupted,
        ROUNDS,
        evaluation=EvaluationConfig(test_data=test_b),
        checkpoint_every=1,
        checkpoint_dir=tmp_path,
    )
    session.run(max_rounds=HALF)

    resumed, test_c = build_algorithm("DMSGD", backend, dynamic=True)
    history_resumed = RunSession.resume(
        resumed,
        latest_checkpoint(tmp_path),
        evaluation=EvaluationConfig(test_data=test_c),
    ).run()

    assert histories_equal(history_straight, history_resumed)
    assert_same_resumable_state(straight, resumed)


COMPRESSED = {
    "codec": "topk",
    "k": 2,
    "communication_interval": 2,
    "error_feedback": True,
}


@pytest.mark.parametrize("backend", BACKENDS)
def test_resume_bit_identical_under_compression(backend, tmp_path):
    """Residual buffers and the interval position ride through checkpoints.

    Top-k with error feedback and a communication interval of 2: the resume
    must restore the per-channel residuals (else the error memory restarts
    from zero and the trajectory drifts) and the interval phase (else the
    resumed run gossips on the wrong rounds).  HALF = 2 lands the
    checkpoint exactly on an off-interval round, so both are exercised.
    """
    straight, test = build_algorithm("DMSGD", backend, compression=COMPRESSED)
    evaluation = EvaluationConfig(eval_every=1, test_data=test)
    history_straight = run_decentralized(straight, ROUNDS, evaluation=evaluation)

    interrupted, test_b = build_algorithm("DMSGD", backend, compression=COMPRESSED)
    session = RunSession(
        interrupted,
        ROUNDS,
        evaluation=EvaluationConfig(eval_every=1, test_data=test_b),
        checkpoint_every=HALF,
        checkpoint_dir=tmp_path,
    )
    session.run(max_rounds=HALF)

    resumed, test_c = build_algorithm("DMSGD", backend, compression=COMPRESSED)
    history_resumed = RunSession.resume(
        resumed,
        latest_checkpoint(tmp_path),
        evaluation=EvaluationConfig(eval_every=1, test_data=test_c),
    ).run()

    assert histories_equal(history_straight, history_resumed)
    assert_same_resumable_state(straight, resumed)
    assert straight.network.bytes_sent == resumed.network.bytes_sent
    straight_res = straight._compression_state._residuals
    resumed_res = resumed._compression_state._residuals
    assert sorted(straight_res) == sorted(resumed_res)
    for channel in straight_res:
        assert np.array_equal(straight_res[channel], resumed_res[channel])
        assert np.any(straight_res[channel] != 0.0), "top-k left no residual?"


def test_resume_restores_sparsifier_rng_streams():
    """random-k's per-agent coordinate streams continue bit-exactly."""
    straight, _ = build_algorithm("DMSGD", "vectorized", compression={"codec": "randomk", "k": 2})
    for _ in range(ROUNDS):
        straight.run_round()

    other, _ = build_algorithm("DMSGD", "vectorized", compression={"codec": "randomk", "k": 2})
    for _ in range(HALF):
        other.run_round()
    payload = other.state_dict()

    resumed, _ = build_algorithm("DMSGD", "vectorized", compression={"codec": "randomk", "k": 2})
    resumed.load_state_dict(payload)
    for _ in range(ROUNDS - HALF):
        resumed.run_round()
    assert np.array_equal(straight.state, resumed.state)
    for rng_a, rng_b in zip(
        straight._compression_state.rngs, resumed._compression_state.rngs
    ):
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


def test_load_state_dict_rejects_compression_mismatch():
    compressed, _ = build_algorithm("DMSGD", "vectorized", compression=COMPRESSED)
    compressed.run_round()
    plain, _ = build_algorithm("DMSGD", "vectorized")
    with pytest.raises(ValueError, match="compression"):
        plain.load_state_dict(compressed.state_dict())
    with pytest.raises(ValueError, match="compression"):
        fresh, _ = build_algorithm("DMSGD", "vectorized", compression=COMPRESSED)
        fresh.load_state_dict(plain.state_dict())
    other_codec, _ = build_algorithm("DMSGD", "vectorized", compression={"codec": "int8"})
    with pytest.raises(ValueError, match="codec"):
        other_codec.load_state_dict(compressed.state_dict())


def test_resume_preserves_netfleet_tracking_state(tmp_path):
    """The gradient-tracking matrices ride through _extra_state exactly."""
    straight, _ = build_algorithm("DP-NET-FLEET", "vectorized")
    for _ in range(ROUNDS):
        straight.run_round()

    other, _ = build_algorithm("DP-NET-FLEET", "vectorized")
    for _ in range(HALF):
        other.run_round()
    payload = other.state_dict()

    resumed, _ = build_algorithm("DP-NET-FLEET", "vectorized")
    resumed.load_state_dict(payload)
    assert resumed._initialized
    for _ in range(ROUNDS - HALF):
        resumed.run_round()
    assert np.array_equal(straight.tracking_state, resumed.tracking_state)
    assert np.array_equal(
        straight.previous_gradient_state, resumed.previous_gradient_state
    )


def test_resume_preserves_pdsl_diagnostics():
    """last_shapley / last_weights survive a round-trip unchanged."""
    original, _ = build_algorithm("PDSL", "vectorized")
    for _ in range(2):
        original.run_round()
    payload = original.state_dict()
    restored, _ = build_algorithm("PDSL", "vectorized")
    restored.load_state_dict(payload)
    assert restored.last_shapley == original.last_shapley
    assert restored.last_weights == original.last_weights


def test_state_dict_is_a_snapshot():
    """Later training must not mutate a previously captured state."""
    algorithm, _ = build_algorithm("DMSGD", "vectorized")
    algorithm.run_round()
    payload = algorithm.state_dict()
    frozen = payload["state"].copy()
    algorithm.run_round()
    assert np.array_equal(payload["state"], frozen)


def test_load_state_dict_rejects_wrong_algorithm():
    donor, _ = build_algorithm("DMSGD", "vectorized")
    recipient, _ = build_algorithm("DP-DPSGD", "vectorized")
    with pytest.raises(ValueError, match="written by algorithm"):
        recipient.load_state_dict(donor.state_dict())


def test_load_state_dict_rejects_wrong_shape():
    donor, _ = build_algorithm("DMSGD", "vectorized")
    payload = donor.state_dict()
    payload["num_agents"] = NUM_AGENTS + 1
    recipient, _ = build_algorithm("DMSGD", "vectorized")
    with pytest.raises(ValueError, match="fleet shape"):
        recipient.load_state_dict(payload)


def test_load_state_dict_rejects_unknown_format():
    donor, _ = build_algorithm("DMSGD", "vectorized")
    payload = donor.state_dict()
    payload["state_format"] = 999
    recipient, _ = build_algorithm("DMSGD", "vectorized")
    with pytest.raises(ValueError, match="state format"):
        recipient.load_state_dict(payload)
