"""Tests for algorithm configuration dataclasses."""

import numpy as np
import pytest

from repro.core.config import (
    AlgorithmConfig,
    CGAConfig,
    MuffliatoConfig,
    NetFleetConfig,
    PDSLConfig,
)
from repro.privacy.calibration import gaussian_sigma


class TestAlgorithmConfig:
    def test_sigma_resolution_from_epsilon(self):
        config = AlgorithmConfig(epsilon=0.5, delta=1e-5, clip_threshold=1.0, batch_size=50)
        expected = gaussian_sigma(0.5, 1e-5, 2.0 * 1.0 / 50)
        np.testing.assert_allclose(config.resolve_sigma(), expected)

    def test_explicit_sigma_takes_precedence(self):
        config = AlgorithmConfig(sigma=0.7, epsilon=0.5)
        assert config.resolve_sigma() == 0.7

    def test_zero_sigma_allowed(self):
        config = AlgorithmConfig(sigma=0.0)
        assert config.resolve_sigma() == 0.0

    def test_sensitivity_formula(self):
        config = AlgorithmConfig(sigma=0.0, clip_threshold=2.0, batch_size=100)
        np.testing.assert_allclose(config.sensitivity, 2.0 * 2.0 / 100)

    def test_requires_sigma_or_epsilon(self):
        with pytest.raises(ValueError):
            AlgorithmConfig()

    def test_with_updates(self):
        config = AlgorithmConfig(sigma=0.0, learning_rate=0.1)
        updated = config.with_updates(learning_rate=0.5)
        assert updated.learning_rate == 0.5
        assert config.learning_rate == 0.1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sigma": 0.0, "learning_rate": 0.0},
            {"sigma": 0.0, "momentum": 1.0},
            {"sigma": 0.0, "momentum": -0.1},
            {"sigma": 0.0, "clip_threshold": 0.0},
            {"sigma": 0.0, "batch_size": 0},
            {"sigma": -1.0},
            {"epsilon": -0.5},
            {"sigma": 0.0, "delta": 0.0},
            {"sigma": 0.0, "delta": 1.0},
        ],
    )
    def test_invalid_configurations(self, kwargs):
        with pytest.raises(ValueError):
            AlgorithmConfig(**kwargs)


class TestPDSLConfig:
    def test_defaults(self):
        config = PDSLConfig(sigma=0.1)
        assert config.momentum == 0.5
        assert config.shapley_permutations == 4
        assert config.characteristic_metric == "accuracy"

    def test_exact_shapley_allowed(self):
        config = PDSLConfig(sigma=0.1, shapley_permutations=0)
        assert config.shapley_permutations == 0

    def test_invalid_shapley_permutations(self):
        with pytest.raises(ValueError):
            PDSLConfig(sigma=0.1, shapley_permutations=-1)

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            PDSLConfig(sigma=0.1, characteristic_metric="f1")

    def test_invalid_validation_batch(self):
        with pytest.raises(ValueError):
            PDSLConfig(sigma=0.1, validation_batch_size=0)


class TestBaselineConfigs:
    def test_muffliato_gossip_steps(self):
        config = MuffliatoConfig(sigma=0.1, gossip_steps=5)
        assert config.gossip_steps == 5
        with pytest.raises(ValueError):
            MuffliatoConfig(sigma=0.1, gossip_steps=0)

    def test_netfleet_local_steps(self):
        config = NetFleetConfig(sigma=0.1, local_steps=3)
        assert config.local_steps == 3
        with pytest.raises(ValueError):
            NetFleetConfig(sigma=0.1, local_steps=0)

    def test_cga_default_momentum(self):
        assert CGAConfig(sigma=0.1).momentum == 0.5
