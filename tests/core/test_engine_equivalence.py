"""Loop-vs-vectorized backend equivalence for every algorithm and topology.

The vectorized engine must be a pure performance optimisation: for a fixed
seed it consumes exactly the same per-agent random streams (batch draws,
Gaussian noise, Shapley permutations) as the loop backend, so the two
backends produce the same ``TrainingHistory`` up to floating-point
associativity of the re-ordered sums.

The sparse (CSR) mixing backend carries a *stronger* contract: it applies
the same ``W`` with the same accumulation order as the dense kernel, so
``mixing_backend="sparse"`` must reproduce the dense vectorized engine's
``TrainingHistory`` **bit for bit** (asserted with exact equality below).
"""

import numpy as np
import pytest

from repro.baselines import DMSGD, DPCGA, DPDPSGD, DPNetFleet, Muffliato
from repro.core.config import (
    AlgorithmConfig,
    CGAConfig,
    MuffliatoConfig,
    NetFleetConfig,
    PDSLConfig,
)
from repro.core.pdsl import PDSL
from repro.data.partition import partition_dirichlet
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier, make_mlp
from repro.simulation.runner import EvaluationConfig, run_decentralized
from repro.topology.graphs import (
    bipartite_graph,
    fully_connected_graph,
    ring_graph,
    torus_graph,
)

NUM_AGENTS = 5
ROUNDS = 3

ALGORITHMS = {
    "DP-DPSGD": (DPDPSGD, AlgorithmConfig, {}),
    "DMSGD": (DMSGD, AlgorithmConfig, {"momentum": 0.5}),
    "MUFFLIATO": (Muffliato, MuffliatoConfig, {"gossip_steps": 2}),
    "DP-CGA": (DPCGA, CGAConfig, {"momentum": 0.5}),
    "DP-NET-FLEET": (DPNetFleet, NetFleetConfig, {"local_steps": 2}),
    "PDSL": (PDSL, PDSLConfig, {"momentum": 0.5, "shapley_permutations": 2}),
}

TOPOLOGIES = {
    "ring": lambda: ring_graph(NUM_AGENTS),
    "full": lambda: fully_connected_graph(NUM_AGENTS),
    "bipartite": lambda: bipartite_graph(NUM_AGENTS),
}


def build_algorithm(
    name,
    backend,
    topology_name=None,
    sigma=0.1,
    model="linear",
    mixing_backend="auto",
    topology_factory=None,
    compression=None,
):
    cls, config_cls, extra = ALGORITHMS[name]
    topology = (topology_factory or TOPOLOGIES[topology_name])()
    data = make_classification_dataset(
        400, num_features=8, num_classes=4, cluster_std=0.6, seed=1
    )
    rng = np.random.default_rng(1)
    shards = partition_dirichlet(
        data, topology.num_agents, alpha=0.5, rng=rng, min_samples_per_agent=8
    ).shards
    validation = data.sample(60, rng)
    test = data.sample(80, np.random.default_rng(2))
    if model == "linear":
        net = make_linear_classifier(8, 4, seed=0)
    else:
        net = make_mlp(8, 4, hidden_sizes=(8,), seed=0)
    config = config_cls(
        learning_rate=0.1,
        sigma=sigma,
        clip_threshold=1.0,
        batch_size=16,
        seed=7,
        backend=backend,
        mixing_backend=mixing_backend,
        compression=compression,
        **extra,
    )
    if cls is PDSL:
        algorithm = cls(net, topology, shards, config, validation=validation)
    else:
        algorithm = cls(net, topology, shards, config)
    return algorithm, test


def run_history(name, backend, topology_name, **kwargs):
    algorithm, test = build_algorithm(name, backend, topology_name, **kwargs)
    history = run_decentralized(
        algorithm,
        num_rounds=ROUNDS,
        evaluation=EvaluationConfig(eval_every=1, test_data=test),
    )
    return algorithm, history


def assert_histories_equivalent(history_a, history_b):
    assert len(history_a) == len(history_b)
    for rec_a, rec_b in zip(history_a.records, history_b.records):
        assert rec_a.round == rec_b.round
        assert rec_a.average_train_loss == pytest.approx(
            rec_b.average_train_loss, rel=1e-9, abs=1e-12
        )
        assert rec_a.test_accuracy == pytest.approx(rec_b.test_accuracy, abs=1e-12)
        assert rec_a.consensus == pytest.approx(rec_b.consensus, rel=1e-6, abs=1e-12)
    assert history_a.final_test_accuracy == pytest.approx(
        history_b.final_test_accuracy, abs=1e-12
    )


@pytest.mark.parametrize("topology_name", sorted(TOPOLOGIES))
@pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
class TestBackendEquivalence:
    def test_identical_training_history(self, algorithm_name, topology_name):
        loop_alg, loop_history = run_history(algorithm_name, "loop", topology_name)
        vec_alg, vec_history = run_history(algorithm_name, "vectorized", topology_name)
        assert loop_alg.backend == "loop"
        assert vec_alg.backend == "vectorized"
        assert_histories_equivalent(loop_history, vec_history)
        np.testing.assert_allclose(
            loop_alg.state, vec_alg.state, rtol=1e-9, atol=1e-12
        )

    def test_identical_traffic_accounting(self, algorithm_name, topology_name):
        loop_alg, _ = run_history(algorithm_name, "loop", topology_name)
        vec_alg, _ = run_history(algorithm_name, "vectorized", topology_name)
        loop_traffic = loop_alg.network.traffic_summary()
        vec_traffic = vec_alg.network.traffic_summary()
        assert loop_traffic["messages_sent"] == vec_traffic["messages_sent"]
        assert loop_traffic["floats_sent"] == vec_traffic["floats_sent"]
        assert loop_traffic["traffic_by_tag"] == vec_traffic["traffic_by_tag"]


class TestBackendEquivalenceVariants:
    """Extra equivalence coverage beyond the main grid."""

    def test_mlp_stacked_path_matches_loop(self):
        _, loop_history = run_history("DMSGD", "loop", "ring", model="mlp")
        _, vec_history = run_history("DMSGD", "vectorized", "ring", model="mlp")
        assert_histories_equivalent(loop_history, vec_history)

    def test_noise_free_trajectories_match(self):
        loop_alg, loop_history = run_history("DP-DPSGD", "loop", "full", sigma=0.0)
        vec_alg, vec_history = run_history("DP-DPSGD", "vectorized", "full", sigma=0.0)
        assert_histories_equivalent(loop_history, vec_history)
        np.testing.assert_allclose(loop_alg.state, vec_alg.state, rtol=1e-9, atol=1e-12)

    def test_vectorized_backend_is_deterministic(self):
        a, history_a = run_history("PDSL", "vectorized", "ring")
        b, history_b = run_history("PDSL", "vectorized", "ring")
        np.testing.assert_array_equal(a.state, b.state)
        assert history_a.losses == history_b.losses

    def test_lossy_network_falls_back_to_loop(self):
        from repro.simulation.network import Network

        algorithm, _ = build_algorithm("DP-DPSGD", "vectorized", "full")
        assert algorithm.backend == "vectorized"
        algorithm.network = Network(
            NUM_AGENTS, drop_probability=0.3, rng=np.random.default_rng(0)
        )
        assert algorithm.backend == "loop"
        algorithm.run_round()  # runs the loop path; messages actually flow
        assert algorithm.network.messages_sent > 0

    def test_stochastic_model_falls_back_to_loop(self):
        # Dropout draws from one RNG stream shared across all forward
        # passes; the vectorized engine's re-grouped evaluations would
        # consume it in a different order, so such models must run on the
        # loop engine under either backend setting.
        from repro.core.config import AlgorithmConfig
        from repro.data.partition import partition_iid
        from repro.nn.layers import Dense, Dropout, ReLU
        from repro.nn.model import Sequential

        data = make_classification_dataset(200, num_features=8, num_classes=4, seed=0)
        shards = partition_iid(data, NUM_AGENTS, np.random.default_rng(0)).shards
        rng = np.random.default_rng(0)
        model = Sequential(
            [Dense(8, 16, rng), ReLU(), Dropout(0.5, np.random.default_rng(1)), Dense(16, 4, rng)]
        )
        config = AlgorithmConfig(sigma=0.1, batch_size=16, backend="vectorized")
        algorithm = DPDPSGD(model, fully_connected_graph(NUM_AGENTS), shards, config)
        assert algorithm.backend == "loop"
        algorithm.run_round()
        assert algorithm.network.messages_sent > 0  # the loop path really ran

    def test_history_metadata_records_effective_backend(self):
        from repro.simulation.network import Network

        algorithm, test = build_algorithm("DP-DPSGD", "vectorized", "full")
        algorithm.network = Network(
            NUM_AGENTS, drop_probability=0.3, rng=np.random.default_rng(0)
        )
        history = run_decentralized(algorithm, num_rounds=1)
        assert history.metadata["backend"] == "loop"


SPARSE_TOPOLOGIES = {
    "ring": lambda: ring_graph(NUM_AGENTS),
    "torus": lambda: torus_graph(3),  # 9 agents, 4-regular
}


def assert_histories_identical(history_a, history_b):
    """Exact (bitwise) equality of every recorded quantity."""
    assert len(history_a) == len(history_b)
    for rec_a, rec_b in zip(history_a.records, history_b.records):
        assert rec_a.round == rec_b.round
        assert rec_a.average_train_loss == rec_b.average_train_loss
        assert rec_a.test_accuracy == rec_b.test_accuracy
        assert rec_a.consensus == rec_b.consensus
    assert history_a.final_test_accuracy == history_b.final_test_accuracy


@pytest.mark.parametrize("topology_name", sorted(SPARSE_TOPOLOGIES))
@pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
class TestSparseMixingEquivalence:
    """CSR gossip must reproduce the dense vectorized engine bit for bit."""

    def run(self, algorithm_name, topology_name, mixing_backend):
        algorithm, test = build_algorithm(
            algorithm_name,
            "vectorized",
            mixing_backend=mixing_backend,
            topology_factory=SPARSE_TOPOLOGIES[topology_name],
        )
        history = run_decentralized(
            algorithm,
            num_rounds=ROUNDS,
            evaluation=EvaluationConfig(eval_every=1, test_data=test),
        )
        return algorithm, history

    def test_bit_identical_training_history(self, algorithm_name, topology_name):
        dense_alg, dense_history = self.run(algorithm_name, topology_name, "dense")
        sparse_alg, sparse_history = self.run(algorithm_name, topology_name, "sparse")
        assert dense_alg.mixing.format == "dense"
        assert sparse_alg.mixing.format == "csr"
        assert_histories_identical(dense_history, sparse_history)
        np.testing.assert_array_equal(dense_alg.state, sparse_alg.state)
        np.testing.assert_array_equal(dense_alg.momentum_state, sparse_alg.momentum_state)

    def test_identical_traffic_accounting(self, algorithm_name, topology_name):
        dense_alg, _ = self.run(algorithm_name, topology_name, "dense")
        sparse_alg, _ = self.run(algorithm_name, topology_name, "sparse")
        assert (
            dense_alg.network.traffic_summary() == sparse_alg.network.traffic_summary()
        )


class TestScheduleEquivalence:
    """Topology schedules: static wrapping is free, dynamics preserve engine parity."""

    @pytest.mark.parametrize("backend", ["loop", "vectorized"])
    @pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
    def test_static_schedule_is_bit_identical(self, algorithm_name, backend):
        from repro.topology.schedule import StaticSchedule

        plain_alg, plain_history = run_history(algorithm_name, backend, "ring")
        wrapped_alg, wrapped_history = run_history(
            algorithm_name,
            backend,
            None,
            topology_factory=lambda: StaticSchedule(ring_graph(NUM_AGENTS)),
        )
        assert_histories_identical(plain_history, wrapped_history)
        np.testing.assert_array_equal(plain_alg.state, wrapped_alg.state)
        np.testing.assert_array_equal(
            plain_alg.momentum_state, wrapped_alg.momentum_state
        )
        assert (
            plain_alg.network.traffic_summary()
            == wrapped_alg.network.traffic_summary()
        )

    @staticmethod
    def dynamic_schedule():
        from repro.topology.schedule import DynamicTopologySchedule

        return DynamicTopologySchedule(
            ring_graph(6),
            rewire_every=2,
            churn_rate=0.25,
            rejoin_rate=0.5,
            straggler_fraction=0.2,
            edge_failure_rate=0.1,
            seed=3,
        )

    @pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
    def test_dynamic_schedule_backend_equivalence(self, algorithm_name):
        """Churn + rewiring + stragglers: both engines stay RNG-stream equal."""
        histories = {}
        algorithms = {}
        for backend in ("loop", "vectorized"):
            algorithm, history = run_history(
                algorithm_name,
                backend,
                None,
                topology_factory=self.dynamic_schedule,
            )
            histories[backend] = history
            algorithms[backend] = algorithm
        assert algorithms["loop"].backend == "loop"
        assert algorithms["vectorized"].backend == "vectorized"
        assert_histories_equivalent(histories["loop"], histories["vectorized"])
        np.testing.assert_allclose(
            algorithms["loop"].state,
            algorithms["vectorized"].state,
            rtol=1e-9,
            atol=1e-12,
        )
        loop_traffic = algorithms["loop"].network.traffic_summary()
        vec_traffic = algorithms["vectorized"].network.traffic_summary()
        assert loop_traffic["messages_sent"] == vec_traffic["messages_sent"]
        assert loop_traffic["floats_sent"] == vec_traffic["floats_sent"]

    def test_dynamic_run_records_events_and_masks(self):
        algorithm, history = run_history(
            "DMSGD", "vectorized", None, topology_factory=self.dynamic_schedule
        )
        events = [e for record in history.records for e in record.topology_events]
        assert events, "a dynamic schedule must surface events in the history"
        kinds = {e["kind"] for e in events}
        assert "rewire" in kinds
        assert {record.active_agents for record in history.records} != {6}
        assert history.metadata["dynamics"]["churn_rate"] == 0.25

    def test_inactive_agents_are_frozen_for_the_round(self):
        from repro.topology.schedule import churn_schedule

        schedule = churn_schedule(ring_graph(6), churn_rate=0.5, rejoin_rate=0.3, seed=1)
        algorithm, _ = build_algorithm(
            "DMSGD", "vectorized", topology_factory=lambda: schedule
        )
        for round_index in range(4):
            before = algorithm.state.copy()
            momentum_before = algorithm.momentum_state.copy()
            algorithm.run_round()
            inactive = ~schedule.active_mask_at(round_index)
            np.testing.assert_array_equal(
                algorithm.state[inactive], before[inactive]
            )
            np.testing.assert_array_equal(
                algorithm.momentum_state[inactive], momentum_before[inactive]
            )


@pytest.mark.parametrize("backend", ["loop", "vectorized"])
@pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
class TestIdentityCodecBitIdentity:
    """``compression={"codec": "identity"}`` must be a no-op, bit for bit.

    The compressed-gossip plumbing routes every exchanged payload through
    :meth:`gossip_broadcast`/:meth:`compress_gossip_rows` even when the
    codec is the identity; these regression cells pin the entire PR-5
    baseline trajectory — history, final state, and traffic counters — for
    every algorithm, on both engines, under static and dynamic topologies.
    """

    def test_static_topology_bit_identical(self, algorithm_name, backend):
        plain_alg, plain_history = run_history(algorithm_name, backend, "ring")
        codec_alg, codec_history = run_history(
            algorithm_name, backend, "ring", compression={"codec": "identity"}
        )
        assert codec_alg.codec.is_identity
        assert_histories_identical(plain_history, codec_history)
        np.testing.assert_array_equal(plain_alg.state, codec_alg.state)
        np.testing.assert_array_equal(
            plain_alg.momentum_state, codec_alg.momentum_state
        )
        assert (
            plain_alg.network.traffic_summary() == codec_alg.network.traffic_summary()
        )

    def test_dynamic_topology_bit_identical(self, algorithm_name, backend):
        factory = TestScheduleEquivalence.dynamic_schedule
        plain_alg, plain_history = run_history(
            algorithm_name, backend, None, topology_factory=factory
        )
        codec_alg, codec_history = run_history(
            algorithm_name,
            backend,
            None,
            topology_factory=factory,
            compression={"codec": "identity"},
        )
        assert_histories_identical(plain_history, codec_history)
        np.testing.assert_array_equal(plain_alg.state, codec_alg.state)
        assert (
            plain_alg.network.traffic_summary() == codec_alg.network.traffic_summary()
        )


class TestSparseMixingVariants:
    def test_auto_selection_prefers_dense_for_small_fleets(self):
        algorithm, _ = build_algorithm("DP-DPSGD", "vectorized", "ring")
        assert algorithm.config.mixing_backend == "auto"
        assert algorithm.mixing.format == "dense"

    def test_sparse_override_respected_on_small_fleets(self):
        algorithm, _ = build_algorithm(
            "DP-DPSGD", "vectorized", "ring", mixing_backend="sparse"
        )
        assert algorithm.mixing.format == "csr"

    def test_sparse_mixing_with_loop_backend(self):
        # The loop backend never applies the operator, but a sparse-stored
        # topology must still serve neighbour queries and weights.
        loop_alg, loop_history = run_history(
            "DP-DPSGD", "loop", "ring", mixing_backend="sparse"
        )
        vec_alg, vec_history = run_history(
            "DP-DPSGD", "vectorized", "ring", mixing_backend="sparse"
        )
        assert loop_alg.backend == "loop"
        assert_histories_equivalent(loop_history, vec_history)

    def test_sparse_stored_topology_runs_end_to_end(self):
        from repro.core.config import AlgorithmConfig
        from repro.data.partition import partition_iid

        topology = ring_graph(80)  # above the auto-sparse threshold
        assert topology.mixing_is_sparse
        data = make_classification_dataset(640, num_features=8, num_classes=4, seed=0)
        shards = partition_iid(data, 80, np.random.default_rng(0)).shards
        config = AlgorithmConfig(sigma=0.1, batch_size=8, backend="vectorized")
        algorithm = DPDPSGD(make_linear_classifier(8, 4, seed=0), topology, shards, config)
        assert algorithm.mixing.format == "csr"
        history = run_decentralized(algorithm, num_rounds=2)
        assert len(history) >= 1
        assert np.isfinite(algorithm.state).all()
