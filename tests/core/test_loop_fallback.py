"""End-to-end coverage of the lossy-network → loop-engine fallback.

``AlgorithmConfig.backend = "vectorized"`` is only an eligibility statement:
message drops exist solely as per-message events on the mailbox path, so a
network with ``drop_probability > 0`` must force every round onto the loop
engine regardless of the configured backend.  These tests drive that
fallback through the real round loop (``run_decentralized``) for every
algorithm, rather than only asserting the ``backend`` property.
"""

import numpy as np
import pytest

from repro.simulation.network import Network
from repro.simulation.runner import EvaluationConfig, run_decentralized

from tests.core.test_engine_equivalence import ALGORITHMS, build_algorithm

NUM_AGENTS = 5


def lossy(algorithm, drop_probability, seed=0):
    algorithm.network = Network(
        algorithm.num_agents,
        drop_probability=drop_probability,
        rng=np.random.default_rng(seed),
    )
    return algorithm


@pytest.mark.parametrize("algorithm_name", sorted(ALGORITHMS))
class TestLossyNetworkFallback:
    def test_vectorized_config_runs_loop_rounds_under_drops(self, algorithm_name):
        algorithm, test = build_algorithm(algorithm_name, "vectorized", "ring")
        assert algorithm.backend == "vectorized"
        lossy(algorithm, drop_probability=0.3)
        assert algorithm.backend == "loop"
        history = run_decentralized(
            algorithm,
            num_rounds=2,
            evaluation=EvaluationConfig(eval_every=1, test_data=test),
        )
        # The loop path really carried the rounds: messages flowed through
        # the mailbox (the vectorized engine only records bulk traffic and
        # never drops anything), some were dropped, and the run stayed sane.
        assert history.metadata["backend"] == "loop"
        assert algorithm.network.messages_sent > 0
        assert algorithm.network.messages_dropped > 0
        assert np.isfinite(algorithm.state).all()
        assert len(history) == 2

    def test_fully_partitioned_network_still_completes_rounds(self, algorithm_name):
        # drop_probability = 1.0 (closed interval): every exchange is lost,
        # every agent is on its own, and the round loop must still make
        # progress without error.
        algorithm, _ = build_algorithm(algorithm_name, "vectorized", "ring")
        lossy(algorithm, drop_probability=1.0)
        assert algorithm.backend == "loop"
        run_decentralized(algorithm, num_rounds=2)
        assert algorithm.network.messages_dropped == algorithm.network.messages_sent
        assert algorithm.network.pending(0) == 0
        assert np.isfinite(algorithm.state).all()


class TestFallbackBoundary:
    def test_zero_drop_probability_keeps_the_vectorized_engine(self):
        algorithm, _ = build_algorithm("DMSGD", "vectorized", "ring")
        algorithm.network = Network(algorithm.num_agents, drop_probability=0.0)
        assert algorithm.backend == "vectorized"
        algorithm.run_round()
        # Bulk accounting only — nothing ever enters a mailbox.
        assert algorithm.network.messages_sent > 0
        assert algorithm.network.pending(0) == 0

    def test_fallback_reverses_when_the_network_heals(self):
        algorithm, _ = build_algorithm("DMSGD", "vectorized", "ring")
        lossy(algorithm, drop_probability=0.5)
        assert algorithm.backend == "loop"
        algorithm.network = Network(algorithm.num_agents)
        assert algorithm.backend == "vectorized"
