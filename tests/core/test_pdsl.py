"""Tests for the PDSL algorithm (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import AlgorithmConfig, PDSLConfig
from repro.core.pdsl import PDSL
from repro.data.partition import partition_dirichlet, partition_iid
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier
from repro.topology.graphs import fully_connected_graph, ring_graph


def build_pdsl(num_agents=4, sigma=0.0, topology=None, seed=0, **config_kwargs):
    data = make_classification_dataset(400, num_features=8, num_classes=4, cluster_std=0.6, seed=seed)
    topology = topology or fully_connected_graph(num_agents)
    rng = np.random.default_rng(seed)
    shards = partition_dirichlet(data, topology.num_agents, alpha=0.5, rng=rng, min_samples_per_agent=8).shards
    validation = data.sample(80, rng)
    model = make_linear_classifier(8, 4, seed=seed)
    defaults = dict(
        learning_rate=0.1,
        momentum=0.5,
        sigma=sigma,
        clip_threshold=1.0,
        batch_size=16,
        seed=seed,
        shapley_permutations=2,
    )
    defaults.update(config_kwargs)
    config = PDSLConfig(**defaults)
    return PDSL(model, topology, shards, config, validation=validation), data


class TestConstruction:
    def test_requires_validation_set(self):
        algorithm, data = build_pdsl()
        model = make_linear_classifier(8, 4, seed=0)
        with pytest.raises(ValueError):
            PDSL(model, algorithm.topology, algorithm.shards, algorithm.config, validation=None)

    def test_requires_pdsl_config(self):
        algorithm, data = build_pdsl()
        base_config = AlgorithmConfig(sigma=0.0, batch_size=16)
        model = make_linear_classifier(8, 4, seed=0)
        with pytest.raises(TypeError):
            PDSL(model, algorithm.topology, algorithm.shards, base_config, validation=data)


class TestOneRound:
    def test_parameters_change_after_round(self):
        algorithm, _ = build_pdsl()
        before = [p.copy() for p in algorithm.params]
        algorithm.run_round()
        for old, new in zip(before, algorithm.params):
            assert not np.allclose(old, new)

    def test_momentum_buffers_updated(self):
        algorithm, _ = build_pdsl()
        algorithm.run_round()
        assert any(np.linalg.norm(m) > 0 for m in algorithm.momenta)

    def test_shapley_values_recorded_for_every_neighbor(self):
        algorithm, _ = build_pdsl(num_agents=4)
        algorithm.run_round()
        for agent in range(4):
            neighbors = set(algorithm.topology.neighbors(agent, include_self=True))
            assert set(algorithm.last_shapley[agent].keys()) == neighbors
            assert set(algorithm.last_weights[agent].keys()) == neighbors

    def test_aggregation_weights_non_negative(self):
        algorithm, _ = build_pdsl()
        algorithm.run_round()
        for weights in algorithm.last_weights:
            assert all(w >= 0 for w in weights.values())

    def test_messages_flow_through_network(self):
        algorithm, _ = build_pdsl(num_agents=4)
        algorithm.run_round()
        summary = algorithm.network.traffic_summary()
        # each agent broadcasts its model to 3 neighbours, sends 3 cross-gradients
        # and broadcasts its provisional state to 3 neighbours: 4 * 9 = 36 messages
        assert summary["messages_sent"] == 36
        assert summary["messages_dropped"] == 0
        assert set(summary["traffic_by_tag"]) == {"model", "cross_grad", "mix"}

    def test_no_pending_messages_after_round(self):
        algorithm, _ = build_pdsl(num_agents=4)
        algorithm.run_round()
        for agent in range(4):
            assert algorithm.network.pending(agent) == 0

    def test_exact_shapley_mode(self):
        algorithm, _ = build_pdsl(num_agents=3, shapley_permutations=0)
        algorithm.run_round()
        assert algorithm.rounds_completed == 1

    def test_neg_loss_characteristic_mode(self):
        algorithm, _ = build_pdsl(num_agents=3, characteristic_metric="neg_loss")
        algorithm.run_round()
        assert algorithm.rounds_completed == 1

    def test_validation_subsampling_mode(self):
        algorithm, _ = build_pdsl(num_agents=3, validation_batch_size=20)
        algorithm.run_round()
        assert algorithm.rounds_completed == 1


class TestLearningBehaviour:
    def test_noise_free_training_reduces_loss(self):
        algorithm, _ = build_pdsl(sigma=0.0)
        initial = algorithm.average_train_loss()
        for _ in range(15):
            algorithm.run_round()
        assert algorithm.average_train_loss() < initial

    def test_gossip_keeps_agents_close(self):
        algorithm, _ = build_pdsl(sigma=0.0)
        for _ in range(10):
            algorithm.run_round()
        # On a fully connected topology the gossip step enforces exact consensus.
        assert algorithm.consensus() < 1e-10

    def test_ring_topology_trains(self):
        algorithm, _ = build_pdsl(sigma=0.0, topology=ring_graph(5))
        initial = algorithm.average_train_loss()
        for _ in range(15):
            algorithm.run_round()
        assert algorithm.average_train_loss() < initial

    def test_determinism_given_seed(self):
        a, _ = build_pdsl(sigma=0.1, seed=3)
        b, _ = build_pdsl(sigma=0.1, seed=3)
        for _ in range(3):
            a.run_round()
            b.run_round()
        for pa, pb in zip(a.params, b.params):
            np.testing.assert_array_equal(pa, pb)

    def test_different_seeds_differ(self):
        a, _ = build_pdsl(sigma=0.1, seed=3)
        b, _ = build_pdsl(sigma=0.1, seed=4)
        a.run_round()
        b.run_round()
        assert not np.allclose(a.params[0], b.params[0])

    def test_dp_noise_slows_but_does_not_break_training(self):
        noisy, _ = build_pdsl(sigma=0.05)
        clean, _ = build_pdsl(sigma=0.0)
        for _ in range(10):
            noisy.run_round()
            clean.run_round()
        assert clean.average_train_loss() <= noisy.average_train_loss() + 0.25
