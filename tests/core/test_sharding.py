"""The sharding layer: row-blocked fleet state and block sizing."""

import numpy as np
import pytest

from repro.sharding import (
    DEFAULT_BLOCK_BYTES,
    FleetState,
    resolve_block_rows,
    row_blocks,
)
from repro.topology.graphs import ring_graph


class TestResolveBlockRows:
    def test_explicit_wins(self):
        assert resolve_block_rows(100, 8, block_rows=7) == 7

    def test_explicit_clamped_to_fleet(self):
        assert resolve_block_rows(100, 8, block_rows=10_000) == 100

    def test_rejects_nonpositive_block(self):
        with pytest.raises(ValueError):
            resolve_block_rows(100, 8, block_rows=0)

    def test_auto_targets_block_bytes(self):
        rows = resolve_block_rows(10**6, 64)
        assert 1 <= rows <= 10**6
        assert rows * 64 * 8 <= DEFAULT_BLOCK_BYTES

    def test_small_fleet_is_one_block(self):
        assert resolve_block_rows(16, 8) == 16

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            resolve_block_rows(0, 8)
        with pytest.raises(ValueError):
            resolve_block_rows(8, 0)


class TestRowBlocks:
    def test_covers_every_row_once(self):
        spans = list(row_blocks(10, 3))
        assert spans == [(0, 3), (3, 6), (6, 9), (9, 10)]

    def test_single_block(self):
        assert list(row_blocks(5, 100)) == [(0, 5)]

    def test_rejects_nonpositive_block(self):
        with pytest.raises(ValueError):
            list(row_blocks(5, 0))


class TestFleetState:
    def test_ram_roundtrip(self, rng):
        source = rng.normal(size=(20, 6))
        fleet = FleetState(20, 6, block_rows=7)
        fleet.fill_from(source)
        np.testing.assert_array_equal(fleet.to_array(), source)
        assert fleet.nbytes == source.nbytes

    def test_blocks_cover_fleet(self, rng):
        fleet = FleetState(10, 4, block_rows=3)
        fleet.fill_from(rng.normal(size=(10, 4)))
        seen = [(start, stop, view.shape) for start, stop, view in fleet.blocks()]
        assert [s[:2] for s in seen] == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert all(shape == (stop - start, 4) for start, stop, shape in seen)

    def test_map_blocks_in_place(self, rng):
        source = rng.normal(size=(10, 4))
        fleet = FleetState(10, 4, block_rows=4)
        fleet.fill_from(source)
        fleet.map_blocks(lambda block: block * 2.0)
        np.testing.assert_array_equal(fleet.to_array(), source * 2.0)

    def test_mix_from_matches_operator(self, rng):
        operator = ring_graph(12).mixing_operator("csr")
        source = FleetState(12, 5, block_rows=5)
        source.fill_from(rng.normal(size=(12, 5)))
        target = FleetState(12, 5, block_rows=5)
        target.mix_from(operator, source)
        np.testing.assert_array_equal(
            target.to_array(), operator.apply(source.array)
        )

    def test_wrap_is_a_view(self, rng):
        backing = rng.normal(size=(8, 3))
        fleet = FleetState.wrap(backing, block_rows=4)
        fleet.map_blocks(lambda block: block + 1.0)
        assert fleet.array is backing

    def test_float32_state(self):
        fleet = FleetState(6, 4, dtype=np.float32)
        assert fleet.array.dtype == np.float32

    def test_memmap_storage_roundtrip(self, rng):
        source = rng.normal(size=(16, 4))
        with FleetState(16, 4, storage="memmap", block_rows=5) as fleet:
            fleet.fill_from(source)
            fleet.flush()
            np.testing.assert_array_equal(fleet.to_array(), source)
            assert isinstance(fleet.array, np.memmap)

    def test_rejects_unknown_storage(self):
        with pytest.raises(ValueError):
            FleetState(4, 2, storage="cloud")

    def test_rejects_shape_mismatch_fill(self, rng):
        fleet = FleetState(4, 2)
        with pytest.raises(ValueError):
            fleet.fill_from(rng.normal(size=(4, 3)))

    def test_readonly_blocks_reject_writes(self, rng):
        source = rng.normal(size=(10, 4))
        fleet = FleetState(10, 4, block_rows=3)
        fleet.fill_from(source)
        for start, stop, view in fleet.blocks(readonly=True):
            assert not view.flags.writeable
            with pytest.raises(ValueError):
                view[0, 0] = 1.0
        # The protection is on the view only; the fleet stays writable and
        # unchanged by the failed assignments.
        np.testing.assert_array_equal(fleet.to_array(), source)
        assert fleet.array.flags.writeable

    def test_readonly_blocks_reject_writes_memmap(self, rng):
        source = rng.normal(size=(10, 4))
        with FleetState(10, 4, storage="memmap", block_rows=4) as fleet:
            fleet.fill_from(source)
            for _, _, view in fleet.blocks(readonly=True):
                with pytest.raises(ValueError):
                    view[...] = 0.0
            np.testing.assert_array_equal(fleet.to_array(), source)

    def test_readonly_array_rejects_writes(self, rng):
        fleet = FleetState(6, 3)
        fleet.fill_from(rng.normal(size=(6, 3)))
        snapshot = fleet.readonly_array
        with pytest.raises(ValueError):
            snapshot[2] = 0.0
