"""The streamed round pipeline: bit-identity, parallel blocks, checkpoints.

The blocked/streamed execution of a full round (``block_rows`` set, with or
without ``storage="memmap"`` and ``block_workers > 1``) is a pure memory
optimisation: every per-agent random stream is pre-split and consumed once
per round per agent, every kernel is row-wise, and parallel blocks touch
disjoint rows — so the resulting trajectory must equal the historic one-shot
path **bit for bit**, for every algorithm, on both engines.  These tests pin
that contract, plus the scheduler's lifecycle and cross-mode checkpointing
(a run started streamed resumes in-RAM and vice versa).
"""

import numpy as np
import pytest

from repro.baselines import DMSGD, DPCGA, DPDPSGD, DPNetFleet, Muffliato
from repro.core.base import LazySeededRngs
from repro.core.config import (
    AlgorithmConfig,
    CGAConfig,
    MuffliatoConfig,
    NetFleetConfig,
    PDSLConfig,
)
from repro.core.pdsl import PDSL
from repro.data.partition import partition_dirichlet
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier
from repro.sharding import RoundScheduler
from repro.simulation.runner import RunSession
from repro.topology.graphs import ring_graph

NUM_AGENTS = 5
ROUNDS = 3

ALGORITHMS = {
    "DP-DPSGD": (DPDPSGD, AlgorithmConfig, {}),
    "DMSGD": (DMSGD, AlgorithmConfig, {"momentum": 0.5}),
    "MUFFLIATO": (Muffliato, MuffliatoConfig, {"gossip_steps": 2}),
    "DP-CGA": (DPCGA, CGAConfig, {"momentum": 0.5}),
    "DP-NET-FLEET": (DPNetFleet, NetFleetConfig, {"local_steps": 2}),
    "PDSL": (PDSL, PDSLConfig, {"momentum": 0.5, "shapley_permutations": 2}),
}


def build_algorithm(name, backend="vectorized", **config_overrides):
    cls, config_cls, extra = ALGORITHMS[name]
    topology = ring_graph(NUM_AGENTS)
    data = make_classification_dataset(
        400, num_features=8, num_classes=4, cluster_std=0.6, seed=1
    )
    shards = partition_dirichlet(
        data, NUM_AGENTS, alpha=0.5, rng=np.random.default_rng(1),
        min_samples_per_agent=8,
    ).shards
    validation = data.sample(60, np.random.default_rng(1))
    net = make_linear_classifier(8, 4, seed=0)
    config = config_cls(
        learning_rate=0.1,
        sigma=0.1,
        clip_threshold=1.0,
        batch_size=16,
        seed=7,
        backend=backend,
        **{**extra, **config_overrides},
    )
    if cls is PDSL:
        return cls(net, topology, shards, config, validation=validation)
    return cls(net, topology, shards, config)


def run_rounds(name, rounds=ROUNDS, **config_overrides):
    algorithm = build_algorithm(name, **config_overrides)
    for round_index in range(rounds):
        algorithm.step(round_index)
    state = np.array(algorithm.state)
    momentum = np.array(algorithm.momentum_state)
    algorithm.close()
    return state, momentum


@pytest.fixture(scope="module")
def oneshot_baselines():
    """One-shot vectorized trajectories, computed once per algorithm."""
    return {name: run_rounds(name) for name in ALGORITHMS}


class TestStreamedBitIdentity:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    @pytest.mark.parametrize("block_rows", [1, 2, NUM_AGENTS])
    def test_streamed_matches_oneshot(self, name, block_rows, oneshot_baselines):
        state, momentum = run_rounds(name, block_rows=block_rows)
        np.testing.assert_array_equal(state, oneshot_baselines[name][0])
        np.testing.assert_array_equal(momentum, oneshot_baselines[name][1])

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_parallel_blocks_match_serial(self, name, oneshot_baselines):
        state, momentum = run_rounds(name, block_rows=2, block_workers=4)
        np.testing.assert_array_equal(state, oneshot_baselines[name][0])
        np.testing.assert_array_equal(momentum, oneshot_baselines[name][1])

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_memmap_storage_matches_oneshot(self, name, oneshot_baselines):
        state, momentum = run_rounds(
            name, block_rows=2, storage="memmap", block_workers=4
        )
        np.testing.assert_array_equal(state, oneshot_baselines[name][0])
        np.testing.assert_array_equal(momentum, oneshot_baselines[name][1])

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_loop_engine_blocked_matches_loop_oneshot(self, name):
        base_state, base_momentum = run_rounds(name, backend="loop")
        state, momentum = run_rounds(
            name, backend="loop", block_rows=2, storage="memmap"
        )
        np.testing.assert_array_equal(state, base_state)
        np.testing.assert_array_equal(momentum, base_momentum)

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_loop_engine_matches_streamed(self, name):
        loop_state, loop_momentum = run_rounds(name, backend="loop")
        state, momentum = run_rounds(name, block_rows=2, storage="memmap")
        np.testing.assert_allclose(state, loop_state, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(momentum, loop_momentum, rtol=1e-9, atol=1e-12)

    @pytest.mark.parametrize(
        "compression",
        [
            {"codec": "topk", "k": 5, "communication_interval": 2},
            {"codec": "fp16"},
        ],
        ids=["topk-interval", "fp16"],
    )
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_compressed_gossip_streams_identically(self, name, compression):
        base_state, base_momentum = run_rounds(name, compression=compression)
        state, momentum = run_rounds(
            name,
            compression=compression,
            block_rows=2,
            storage="memmap",
            block_workers=4,
        )
        np.testing.assert_array_equal(state, base_state)
        np.testing.assert_array_equal(momentum, base_momentum)

    @pytest.mark.parametrize("name", ["DP-DPSGD", "MUFFLIATO", "PDSL"])
    def test_float32_state_streams_identically(self, name):
        base_state, base_momentum = run_rounds(name, dtype="float32")
        state, momentum = run_rounds(name, dtype="float32", block_rows=2)
        np.testing.assert_array_equal(state, base_state)
        np.testing.assert_array_equal(momentum, base_momentum)
        assert state.dtype == np.float32


class TestCrossModeCheckpoint:
    @pytest.mark.parametrize("name", ["DP-DPSGD", "DP-NET-FLEET", "PDSL"])
    @pytest.mark.parametrize(
        "save_kwargs,resume_kwargs",
        [
            ({"block_rows": 2, "storage": "memmap"}, {}),
            ({}, {"block_rows": 2, "storage": "memmap"}),
        ],
        ids=["streamed-to-ram", "ram-to-streamed"],
    )
    def test_resume_across_modes_is_bit_identical(
        self, tmp_path, name, save_kwargs, resume_kwargs
    ):
        reference = build_algorithm(name)
        RunSession(reference, num_rounds=4).run()
        expected = np.array(reference.state)
        reference.close()

        first = build_algorithm(name, **save_kwargs)
        session = RunSession(
            first,
            num_rounds=4,
            checkpoint_every=2,
            checkpoint_dir=tmp_path,
            out_of_core=True,
        )
        session.run(max_rounds=2)
        checkpoint = session.checkpoint()
        first.close()

        second = build_algorithm(name, **resume_kwargs)
        RunSession.resume(second, checkpoint, out_of_core=True).run()
        np.testing.assert_array_equal(np.array(second.state), expected)
        second.close()


class TestRoundScheduler:
    def test_serial_runs_inline(self):
        with RoundScheduler(1) as scheduler:
            assert not scheduler.parallel
            results = scheduler.map(lambda a, b: (a, b), [(0, 2), (2, 5)])
        assert results == [(0, 2), (2, 5)]

    def test_parallel_preserves_block_order(self):
        with RoundScheduler(4) as scheduler:
            assert scheduler.parallel
            blocks = [(i, i + 1) for i in range(32)]
            results = scheduler.map(lambda a, b: a * 10 + b, blocks)
        assert results == [a * 10 + b for a, b in blocks]

    def test_serial_flag_forces_inline_execution(self):
        import threading

        seen = []
        with RoundScheduler(4) as scheduler:
            scheduler.map(
                lambda a, b: seen.append(threading.current_thread().name),
                [(0, 1), (1, 2)],
                serial=True,
            )
        assert all(name == threading.main_thread().name for name in seen)

    def test_worker_error_propagates(self):
        def boom(start, stop):
            if start == 1:
                raise RuntimeError("block failed")
            return start

        with RoundScheduler(4) as scheduler:
            with pytest.raises(RuntimeError, match="block failed"):
                scheduler.map(boom, [(0, 1), (1, 2), (2, 3)])

    def test_close_is_idempotent(self):
        scheduler = RoundScheduler(2)
        scheduler.map(lambda a, b: a, [(0, 1)])
        scheduler.close()
        scheduler.close()


class TestLazySeededRngs:
    def test_streams_match_eager_generators(self):
        seeds = np.random.default_rng(0).integers(0, 2**63 - 1, size=8)
        lazy = LazySeededRngs(seeds)
        assert len(lazy) == 8
        for index, seed in enumerate(seeds):
            expected = np.random.default_rng(int(seed)).normal(size=4)
            np.testing.assert_array_equal(lazy[index].normal(size=4), expected)

    def test_generators_cached_and_stateful(self):
        seeds = np.arange(3, dtype=np.int64)
        lazy = LazySeededRngs(seeds)
        generator = lazy[1]
        first = generator.normal()
        # Same object on re-access: the consumed stream position persists.
        assert lazy[1] is generator
        assert lazy[1].normal() != first

    def test_negative_indexing_and_iteration(self):
        seeds = np.arange(4, dtype=np.int64)
        lazy = LazySeededRngs(seeds)
        assert lazy[-1] is lazy[3]
        materialized = list(lazy)
        assert len(materialized) == 4
        assert materialized[2] is lazy[2]
