"""Tests for the Dataset container and splitting."""

import numpy as np
import pytest

from repro.data.dataset import Dataset, train_val_test_split


@pytest.fixture
def dataset():
    rng = np.random.default_rng(0)
    return Dataset(rng.normal(size=(50, 4)), rng.integers(0, 3, size=50))


class TestDatasetBasics:
    def test_len(self, dataset):
        assert len(dataset) == 50

    def test_num_classes(self, dataset):
        assert dataset.num_classes == 3

    def test_input_shape(self, dataset):
        assert dataset.input_shape == (4,)

    def test_labels_cast_to_int64(self):
        data = Dataset(np.zeros((3, 2)), np.array([0.0, 1.0, 2.0]))
        assert data.labels.dtype == np.int64

    def test_mismatched_rows_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros(4))

    def test_2d_labels_rejected(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((3, 2)), np.zeros((3, 1)))

    def test_empty_dataset(self):
        data = Dataset(np.zeros((0, 4)), np.zeros(0))
        assert len(data) == 0
        assert data.num_classes == 0


class TestSubsetSampleShuffle:
    def test_subset_selects_rows(self, dataset):
        sub = dataset.subset([0, 5, 10])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.inputs[1], dataset.inputs[5])

    def test_shuffled_preserves_pairs(self, dataset):
        shuffled = dataset.shuffled(np.random.default_rng(1))
        assert len(shuffled) == len(dataset)
        # every (input, label) pair of the original must appear in the shuffle
        original = {(round(float(x[0]), 9), int(y)) for x, y in zip(dataset.inputs, dataset.labels)}
        after = {(round(float(x[0]), 9), int(y)) for x, y in zip(shuffled.inputs, shuffled.labels)}
        assert original == after

    def test_sample_without_replacement(self, dataset):
        sample = dataset.sample(10, np.random.default_rng(2))
        assert len(sample) == 10

    def test_sample_too_large_without_replacement_raises(self, dataset):
        with pytest.raises(ValueError):
            dataset.sample(100, np.random.default_rng(2))

    def test_sample_with_replacement_allows_oversampling(self, dataset):
        sample = dataset.sample(100, np.random.default_rng(2), replace=True)
        assert len(sample) == 100

    def test_negative_sample_size_rejected(self, dataset):
        with pytest.raises(ValueError):
            dataset.sample(-1, np.random.default_rng(0))


class TestBatchesAndCounts:
    def test_batches_cover_everything(self, dataset):
        seen = 0
        for x, y in dataset.batches(8):
            assert x.shape[0] == y.shape[0]
            seen += x.shape[0]
        assert seen == len(dataset)

    def test_batches_shuffled_with_rng(self, dataset):
        batches1 = [y for _, y in dataset.batches(10, rng=np.random.default_rng(0))]
        batches2 = [y for _, y in dataset.batches(10, rng=np.random.default_rng(1))]
        assert not all(np.array_equal(a, b) for a, b in zip(batches1, batches2))

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            list(dataset.batches(0))

    def test_class_counts(self, dataset):
        counts = dataset.class_counts()
        assert counts.sum() == len(dataset)
        assert counts.shape == (3,)

    def test_class_counts_with_explicit_k(self, dataset):
        counts = dataset.class_counts(num_classes=5)
        assert counts.shape == (5,)
        assert counts[3:].sum() == 0

    def test_concat(self, dataset):
        merged = dataset.concat(dataset)
        assert len(merged) == 2 * len(dataset)

    def test_concat_shape_mismatch(self, dataset):
        other = Dataset(np.zeros((3, 7)), np.zeros(3))
        with pytest.raises(ValueError):
            dataset.concat(other)


class TestTrainValTestSplit:
    def test_sizes(self, dataset):
        train, val, test = train_val_test_split(dataset, 0.2, 0.2, np.random.default_rng(0))
        assert len(train) + len(val) + len(test) == len(dataset)
        assert len(val) == 10
        assert len(test) == 10

    def test_no_overlap(self, dataset):
        # give every row a unique marker value to track membership
        inputs = np.arange(50, dtype=np.float64).reshape(50, 1)
        data = Dataset(inputs, np.zeros(50))
        train, val, test = train_val_test_split(data, 0.3, 0.3, np.random.default_rng(1))
        all_markers = np.concatenate([train.inputs, val.inputs, test.inputs]).ravel()
        assert len(set(all_markers.tolist())) == 50

    def test_invalid_fractions(self, dataset):
        with pytest.raises(ValueError):
            train_val_test_split(dataset, 0.6, 0.6, np.random.default_rng(0))
        with pytest.raises(ValueError):
            train_val_test_split(dataset, -0.1, 0.2, np.random.default_rng(0))
