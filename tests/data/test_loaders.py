"""Tests for mini-batch samplers and epoch iterators."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.loaders import BatchSampler, batch_iterator
from repro.data.synthetic import make_classification_dataset


@pytest.fixture
def dataset():
    return make_classification_dataset(80, num_features=4, num_classes=3, seed=0)


class TestBatchSampler:
    def test_batch_shapes(self, dataset):
        sampler = BatchSampler(dataset, 16, np.random.default_rng(0))
        x, y = sampler.next_batch()
        assert x.shape == (16, 4)
        assert y.shape == (16,)

    def test_batch_capped_at_dataset_size(self, dataset):
        sampler = BatchSampler(dataset, 500, np.random.default_rng(0))
        x, _ = sampler.next_batch()
        assert x.shape[0] == len(dataset)

    def test_with_replacement_allows_larger_batches(self, dataset):
        sampler = BatchSampler(dataset, 200, np.random.default_rng(0), replace_within_batch=True)
        x, _ = sampler.next_batch()
        assert x.shape[0] == 200

    def test_draw_counter(self, dataset):
        sampler = BatchSampler(dataset, 8, np.random.default_rng(0))
        for _ in range(5):
            sampler.next_batch()
        assert sampler.num_draws == 5

    def test_different_batches_across_draws(self, dataset):
        sampler = BatchSampler(dataset, 16, np.random.default_rng(0))
        _, y1 = sampler.next_batch()
        _, y2 = sampler.next_batch()
        assert not np.array_equal(y1, y2)

    def test_deterministic_given_seed(self, dataset):
        s1 = BatchSampler(dataset, 8, np.random.default_rng(5))
        s2 = BatchSampler(dataset, 8, np.random.default_rng(5))
        x1, y1 = s1.next_batch()
        x2, y2 = s2.next_batch()
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_empty_dataset_rejected(self):
        empty = Dataset(np.zeros((0, 4)), np.zeros(0))
        with pytest.raises(ValueError):
            BatchSampler(empty, 4, np.random.default_rng(0))

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            BatchSampler(dataset, 0, np.random.default_rng(0))


class TestBatchIterator:
    def test_covers_all_examples(self, dataset):
        total = sum(x.shape[0] for x, _ in batch_iterator(dataset, 16))
        assert total == len(dataset)

    def test_drop_last(self, dataset):
        batches = list(batch_iterator(dataset, 32, drop_last=True))
        assert all(x.shape[0] == 32 for x, _ in batches)
        assert len(batches) == len(dataset) // 32

    def test_shuffling_changes_order(self, dataset):
        order1 = np.concatenate([y for _, y in batch_iterator(dataset, 16, rng=np.random.default_rng(0))])
        order2 = np.concatenate([y for _, y in batch_iterator(dataset, 16, rng=np.random.default_rng(3))])
        assert not np.array_equal(order1, order2)

    def test_no_rng_preserves_order(self, dataset):
        labels = np.concatenate([y for _, y in batch_iterator(dataset, 16)])
        np.testing.assert_array_equal(labels, dataset.labels)

    def test_invalid_batch_size(self, dataset):
        with pytest.raises(ValueError):
            list(batch_iterator(dataset, -1))
