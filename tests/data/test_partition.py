"""Tests for the IID / Dirichlet / shard partitioners and heterogeneity metrics."""

import numpy as np
import pytest

from repro.data.dataset import Dataset
from repro.data.partition import (
    heterogeneity_degree,
    label_distribution,
    partition_by_shards,
    partition_dirichlet,
    partition_iid,
)
from repro.data.synthetic import make_classification_dataset


@pytest.fixture
def dataset():
    return make_classification_dataset(600, num_features=5, num_classes=6, seed=0)


class TestIIDPartition:
    def test_covers_all_examples_exactly_once(self, dataset):
        result = partition_iid(dataset, 5, np.random.default_rng(0))
        assert sum(result.sizes()) == len(dataset)
        all_indices = np.concatenate(result.indices)
        assert len(set(all_indices.tolist())) == len(dataset)

    def test_near_equal_sizes(self, dataset):
        result = partition_iid(dataset, 7, np.random.default_rng(0))
        sizes = result.sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_low_heterogeneity(self, dataset):
        result = partition_iid(dataset, 5, np.random.default_rng(0))
        assert heterogeneity_degree(result) < 0.15

    def test_too_many_agents_rejected(self):
        small = make_classification_dataset(5, num_classes=2, seed=0)
        with pytest.raises(ValueError):
            partition_iid(small, 10, np.random.default_rng(0))

    def test_zero_agents_rejected(self, dataset):
        with pytest.raises(ValueError):
            partition_iid(dataset, 0, np.random.default_rng(0))


class TestDirichletPartition:
    def test_covers_all_examples_exactly_once(self, dataset):
        result = partition_dirichlet(dataset, 6, alpha=0.25, rng=np.random.default_rng(0))
        assert sum(result.sizes()) == len(dataset)
        all_indices = np.concatenate(result.indices)
        assert len(set(all_indices.tolist())) == len(dataset)

    def test_min_samples_respected(self, dataset):
        result = partition_dirichlet(
            dataset, 6, alpha=0.25, rng=np.random.default_rng(0), min_samples_per_agent=10
        )
        assert min(result.sizes()) >= 10

    def test_smaller_alpha_more_heterogeneous(self, dataset):
        rng = np.random.default_rng(1)
        skewed = partition_dirichlet(dataset, 8, alpha=0.05, rng=np.random.default_rng(1))
        uniform = partition_dirichlet(dataset, 8, alpha=100.0, rng=np.random.default_rng(1))
        assert heterogeneity_degree(skewed) > heterogeneity_degree(uniform)

    def test_records_method_and_params(self, dataset):
        result = partition_dirichlet(dataset, 4, alpha=0.5, rng=np.random.default_rng(0))
        assert result.method == "dirichlet"
        assert result.params["alpha"] == 0.5

    def test_invalid_alpha(self, dataset):
        with pytest.raises(ValueError):
            partition_dirichlet(dataset, 4, alpha=0.0, rng=np.random.default_rng(0))

    def test_impossible_minimum_raises(self):
        tiny = make_classification_dataset(20, num_classes=2, seed=0)
        with pytest.raises(RuntimeError):
            partition_dirichlet(
                tiny, 10, alpha=0.05, rng=np.random.default_rng(0),
                min_samples_per_agent=10, max_retries=3,
            )

    def test_deterministic_given_rng_seed(self, dataset):
        a = partition_dirichlet(dataset, 5, alpha=0.25, rng=np.random.default_rng(7))
        b = partition_dirichlet(dataset, 5, alpha=0.25, rng=np.random.default_rng(7))
        assert a.sizes() == b.sizes()
        for ia, ib in zip(a.indices, b.indices):
            np.testing.assert_array_equal(ia, ib)


class TestShardPartition:
    def test_covers_all_examples(self, dataset):
        result = partition_by_shards(dataset, 5, shards_per_agent=2, rng=np.random.default_rng(0))
        assert sum(result.sizes()) == len(dataset)

    def test_pathological_skew(self, dataset):
        sharded = partition_by_shards(dataset, 6, shards_per_agent=1, rng=np.random.default_rng(0))
        iid = partition_iid(dataset, 6, np.random.default_rng(0))
        assert heterogeneity_degree(sharded) > heterogeneity_degree(iid)

    def test_each_agent_has_few_classes(self, dataset):
        result = partition_by_shards(dataset, 6, shards_per_agent=1, rng=np.random.default_rng(0))
        for shard in result.shards:
            present = np.unique(shard.labels)
            assert len(present) <= 3

    def test_too_many_shards_rejected(self):
        tiny = make_classification_dataset(10, num_classes=2, seed=0)
        with pytest.raises(ValueError):
            partition_by_shards(tiny, 5, shards_per_agent=10, rng=np.random.default_rng(0))


class TestHeterogeneityMetrics:
    def test_label_distribution_normalised(self, dataset):
        result = partition_dirichlet(dataset, 4, alpha=0.25, rng=np.random.default_rng(0))
        dist = label_distribution(result.shards[0], dataset.num_classes)
        np.testing.assert_allclose(dist.sum(), 1.0)
        assert np.all(dist >= 0)

    def test_label_distribution_empty_shard_uniform(self):
        empty = Dataset(np.zeros((0, 3)), np.zeros(0))
        dist = label_distribution(empty, 4)
        np.testing.assert_allclose(dist, 0.25)

    def test_heterogeneity_bounds(self, dataset):
        result = partition_dirichlet(dataset, 4, alpha=0.25, rng=np.random.default_rng(0))
        degree = heterogeneity_degree(result)
        assert 0.0 <= degree <= 1.0

    def test_label_matrix_shape(self, dataset):
        result = partition_iid(dataset, 4, np.random.default_rng(0))
        matrix = result.label_matrix(dataset.num_classes)
        assert matrix.shape == (4, dataset.num_classes)
        assert matrix.sum() == len(dataset)
