"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data.synthetic import (
    make_classification_dataset,
    make_synthetic_cifar,
    make_synthetic_mnist,
)
from repro.nn.zoo import make_linear_classifier


class TestClassificationDataset:
    def test_shapes(self):
        data = make_classification_dataset(100, num_features=8, num_classes=5, seed=0)
        assert data.inputs.shape == (100, 8)
        assert data.labels.shape == (100,)
        assert data.num_classes <= 5

    def test_deterministic(self):
        a = make_classification_dataset(50, seed=3)
        b = make_classification_dataset(50, seed=3)
        np.testing.assert_array_equal(a.inputs, b.inputs)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_classification_dataset(50, seed=1)
        b = make_classification_dataset(50, seed=2)
        assert not np.allclose(a.inputs, b.inputs)

    def test_separable_when_low_noise(self):
        data = make_classification_dataset(
            400, num_features=10, num_classes=4, cluster_std=0.3, class_separation=5.0, seed=0
        )
        model = make_linear_classifier(10, 4, seed=0)
        params = model.get_flat_params()
        for _ in range(80):
            _, grad = model.loss_and_gradient(data.inputs, data.labels, params=params)
            params -= 0.5 * grad
        assert model.accuracy(data.inputs, data.labels, params=params) > 0.95

    def test_label_noise_reduces_purity(self):
        clean = make_classification_dataset(500, cluster_std=0.2, label_noise=0.0, seed=0)
        noisy = make_classification_dataset(500, cluster_std=0.2, label_noise=0.4, seed=0)
        # With 40% flips, the noisy labels must differ from the clean ones on many rows.
        assert np.mean(clean.labels != noisy.labels) > 0.2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            make_classification_dataset(0)
        with pytest.raises(ValueError):
            make_classification_dataset(10, num_classes=1)
        with pytest.raises(ValueError):
            make_classification_dataset(10, label_noise=1.0)


class TestSyntheticMnist:
    def test_shapes_and_range(self):
        data = make_synthetic_mnist(num_samples=64, seed=0)
        assert data.inputs.shape == (64, 1, 28, 28)
        assert data.inputs.min() >= 0.0 and data.inputs.max() <= 1.0
        assert data.labels.min() >= 0 and data.labels.max() <= 9

    def test_custom_image_size(self):
        data = make_synthetic_mnist(num_samples=10, image_size=14, seed=0)
        assert data.inputs.shape == (10, 1, 14, 14)

    def test_deterministic(self):
        a = make_synthetic_mnist(num_samples=20, seed=9)
        b = make_synthetic_mnist(num_samples=20, seed=9)
        np.testing.assert_array_equal(a.inputs, b.inputs)

    def test_class_structure_learnable(self):
        data = make_synthetic_mnist(num_samples=300, num_classes=4, noise_std=0.1, image_size=10, seed=0)
        flat = data.inputs.reshape(len(data), -1)
        model = make_linear_classifier(flat.shape[1], 4, seed=0)
        params = model.get_flat_params()
        for _ in range(60):
            _, grad = model.loss_and_gradient(flat, data.labels, params=params)
            params -= 0.5 * grad
        assert model.accuracy(flat, data.labels, params=params) > 0.9

    def test_invalid_samples(self):
        with pytest.raises(ValueError):
            make_synthetic_mnist(num_samples=0)


class TestSyntheticCifar:
    def test_shapes_and_range(self):
        data = make_synthetic_cifar(num_samples=32, seed=0)
        assert data.inputs.shape == (32, 3, 32, 32)
        assert data.inputs.min() >= 0.0 and data.inputs.max() <= 1.0

    def test_harder_than_mnist_by_default(self):
        # the CIFAR stand-in uses a larger default noise level
        from repro.data import synthetic

        mnist = make_synthetic_mnist(num_samples=10, seed=0)
        cifar = make_synthetic_cifar(num_samples=10, seed=0)
        assert cifar.inputs.shape[1] == 3
        assert mnist.inputs.shape[1] == 1

    def test_num_classes_respected(self):
        data = make_synthetic_cifar(num_samples=50, num_classes=7, seed=0)
        assert data.labels.max() < 7
