"""Tests for the experiment harness and report formatting."""

import numpy as np
import pytest

from repro.core.pdsl import PDSL
from repro.experiments.harness import (
    build_algorithm,
    build_experiment_components,
    run_comparison,
    run_single,
)
from repro.experiments.report import (
    accuracy_table_rows,
    format_accuracy_table,
    format_loss_curves,
    format_runtime_table,
    loss_curve_series,
    runtime_summary_rows,
)
from repro.experiments.specs import fast_spec
from repro.simulation.metrics import RoundRecord, TrainingHistory


@pytest.fixture(scope="module")
def components():
    spec = fast_spec(num_agents=4, epsilon=0.3, num_rounds=3)
    return build_experiment_components(spec)


class TestComponentConstruction:
    def test_partition_matches_agent_count(self, components):
        assert components.partition.num_agents == 4
        assert components.topology.num_agents == 4

    def test_splits_disjoint_sizes(self, components):
        spec = components.spec
        total = len(components.train) + len(components.validation) + len(components.test)
        assert total == spec.train_samples + spec.validation_samples + spec.test_samples
        assert len(components.validation) == spec.validation_samples
        assert len(components.test) == spec.test_samples

    def test_model_factory_produces_identical_models(self, components):
        a = components.model_factory()
        b = components.model_factory()
        np.testing.assert_array_equal(a.get_flat_params(), b.get_flat_params())

    def test_every_topology_name_supported(self):
        for topology in (
            "fully_connected",
            "ring",
            "bipartite",
            "star",
            "grid",
            "erdos_renyi",
            "random_regular",
            "small_world",
            "exponential",
        ):
            spec = fast_spec(num_agents=6, num_rounds=2).with_updates(topology=topology)
            comps = build_experiment_components(spec)
            assert comps.topology.num_agents == 6

    def test_square_and_power_of_two_topologies(self):
        torus = fast_spec(num_agents=9, num_rounds=2).with_updates(topology="torus")
        assert build_experiment_components(torus).topology.num_agents == 9
        cube = fast_spec(num_agents=8, num_rounds=2).with_updates(topology="hypercube")
        assert build_experiment_components(cube).topology.num_agents == 8
        with pytest.raises(ValueError, match="square"):
            build_experiment_components(
                fast_spec(num_agents=10).with_updates(topology="torus")
            )
        with pytest.raises(ValueError, match="power-of-two"):
            build_experiment_components(
                fast_spec(num_agents=10).with_updates(topology="hypercube")
            )

    def test_unknown_topology_rejected(self):
        spec = fast_spec(num_agents=4).with_updates(topology="moebius")
        with pytest.raises(ValueError):
            build_experiment_components(spec)

    def test_image_dataset_flattened_for_dense_models(self):
        spec = fast_spec(num_agents=4, num_rounds=2).with_updates(
            dataset="mnist", train_samples=150, validation_samples=30, test_samples=40, num_classes=4
        )
        comps = build_experiment_components(spec)
        assert len(comps.train.input_shape) == 1


class TestBuildAlgorithm:
    def test_pdsl_gets_validation_set(self, components):
        algorithm = build_algorithm("PDSL", components)
        assert isinstance(algorithm, PDSL)
        assert algorithm.validation is not None

    @pytest.mark.parametrize(
        "name", ["PDSL", "DP-DPSGD", "MUFFLIATO", "DP-CGA", "DP-NET-FLEET", "DMSGD", "D-PSGD"]
    )
    def test_all_algorithms_constructible(self, components, name):
        algorithm = build_algorithm(name, components)
        assert algorithm.num_agents == 4

    def test_unknown_algorithm_rejected(self, components):
        with pytest.raises(ValueError):
            build_algorithm("FedAvg", components)

    def test_sigma_override(self, components):
        algorithm = build_algorithm("DP-DPSGD", components, sigma=0.0)
        assert algorithm.sigma == 0.0

    def test_non_private_reference_has_zero_sigma(self, components):
        algorithm = build_algorithm("D-PSGD", components)
        assert algorithm.sigma == 0.0


class TestRunSingleAndComparison:
    def test_run_single_history_length(self, components):
        history = run_single("DP-DPSGD", components)
        assert len(history) == components.spec.num_rounds
        assert history.final_test_accuracy is not None

    def test_run_comparison_returns_all_algorithms(self):
        spec = fast_spec(num_agents=4, num_rounds=2, algorithms=["PDSL", "DP-DPSGD"])
        results = run_comparison(spec)
        assert set(results) == {"PDSL", "DP-DPSGD"}
        for history in results.values():
            assert len(history) == 2

    def test_run_comparison_algorithm_override(self):
        spec = fast_spec(num_agents=4, num_rounds=2)
        results = run_comparison(spec, algorithms=["DP-DPSGD"])
        assert set(results) == {"DP-DPSGD"}


class TestReporting:
    def make_histories(self):
        histories = {}
        for name, losses in [("A", [2.0, 1.0]), ("B", [2.0, 1.5])]:
            history = TrainingHistory(algorithm=name)
            for t, loss in enumerate(losses, start=1):
                history.append(RoundRecord(round=t, average_train_loss=loss))
            history.final_test_accuracy = 0.5
            histories[name] = history
        return histories

    def test_loss_curve_series(self):
        series = loss_curve_series(self.make_histories())
        assert series["A"] == [(1, 2.0), (2, 1.0)]

    def test_format_loss_curves_contains_all_algorithms(self):
        text = format_loss_curves(self.make_histories(), title="demo")
        assert "demo" in text
        assert "A" in text and "B" in text
        assert "2.0000" in text

    def test_format_loss_curves_empty(self):
        assert "(no results)" in format_loss_curves({})

    def test_format_loss_curves_max_rows(self):
        histories = self.make_histories()
        text = format_loss_curves(histories, max_rows=1)
        assert len(text.splitlines()) <= 5

    def test_accuracy_table_rows_and_formatting(self):
        histories = self.make_histories()
        results = {("ring", 10): histories, ("ring", 20): histories}
        table = accuracy_table_rows(results, algorithms=["A", "B"])
        assert table["A"][("ring", 10)] == 0.5
        text = format_accuracy_table(table, caption="Table demo")
        assert "Table demo" in text
        assert "ring" in text
        assert "0.500" in text

    def test_accuracy_table_missing_algorithm_skipped(self):
        histories = self.make_histories()
        table = accuracy_table_rows({("ring", 10): histories}, algorithms=["A", "C"])
        assert table["C"] == {}


class TestDynamicsThroughTheHarness:
    """The declarative ``dynamics`` field, end to end through run_comparison."""

    @pytest.fixture(scope="class")
    def dynamic_results(self):
        spec = fast_spec(
            num_agents=6,
            topology="ring",
            num_rounds=6,
            algorithms=["PDSL", "DMSGD"],
            dynamics={"rewire_every": 2, "churn_rate": 0.15, "rejoin_rate": 0.5},
        )
        return run_comparison(spec)

    def test_components_build_a_shared_schedule(self):
        from repro.topology.schedule import DynamicTopologySchedule

        spec = fast_spec(num_agents=5, dynamics={"churn_rate": 0.1})
        components = build_experiment_components(spec)
        assert isinstance(components.schedule, DynamicTopologySchedule)
        algorithm = build_algorithm("DMSGD", components)
        assert algorithm.schedule is components.schedule

    def test_static_spec_builds_no_schedule(self, components):
        assert components.schedule is None
        algorithm = build_algorithm("DMSGD", components)
        assert algorithm.schedule.is_static

    def test_events_recorded_in_every_history(self, dynamic_results):
        for name, history in dynamic_results.items():
            assert history.topology_events, name
            assert "rewire" in history.event_counts()
            assert history.metadata["dynamics"]["rewire_every"] == 2

    def test_all_algorithms_see_the_same_dynamics(self, dynamic_results):
        event_lists = [h.topology_events for h in dynamic_results.values()]
        assert event_lists[0] == event_lists[1]

    def test_losses_stay_finite_under_dynamics(self, dynamic_results):
        for history in dynamic_results.values():
            assert np.isfinite(history.losses).all()

    def test_unknown_dynamics_keys_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="unknown dynamics keys"):
            fast_spec(dynamics={"rewire_evry": 2})


class TestRuntimeReporting:
    def make_timed_history(self, name, seconds):
        history = TrainingHistory(algorithm=name, metadata={"rounds": 4})
        for round_index, loss in enumerate([1.0, 0.5], start=1):
            history.append(
                RoundRecord(
                    round=round_index,
                    average_train_loss=loss,
                    wall_clock_seconds=seconds,
                )
            )
        return history

    def test_runtime_summary_rows(self):
        histories = {"A": self.make_timed_history("A", 0.25)}
        rows = runtime_summary_rows(histories)
        assert rows["A"]["total_seconds"] == pytest.approx(0.5)
        assert rows["A"]["seconds_per_round"] == pytest.approx(0.125)

    def test_format_runtime_table_has_a_runtime_column(self):
        histories = {
            "A": self.make_timed_history("A", 0.25),
            "B": self.make_timed_history("B", 0.1),
        }
        table = format_runtime_table(histories)
        assert "runtime [s]" in table
        assert "s/round" in table
        for name in histories:
            assert name in table

    def test_run_comparison_populates_wall_clock(self):
        spec = fast_spec(num_agents=4, num_rounds=2, algorithms=["DMSGD"])
        histories = run_comparison(spec)
        history = histories["DMSGD"]
        assert history.total_wall_clock() > 0.0
        assert all(r.wall_clock_seconds is not None for r in history.records)
