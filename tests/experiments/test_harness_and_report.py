"""Tests for the experiment harness and report formatting."""

import numpy as np
import pytest

from repro.core.pdsl import PDSL
from repro.experiments.harness import (
    build_algorithm,
    build_experiment_components,
    run_comparison,
    run_single,
)
from repro.experiments.report import (
    accuracy_table_rows,
    format_accuracy_table,
    format_loss_curves,
    loss_curve_series,
)
from repro.experiments.specs import fast_spec
from repro.simulation.metrics import RoundRecord, TrainingHistory


@pytest.fixture(scope="module")
def components():
    spec = fast_spec(num_agents=4, epsilon=0.3, num_rounds=3)
    return build_experiment_components(spec)


class TestComponentConstruction:
    def test_partition_matches_agent_count(self, components):
        assert components.partition.num_agents == 4
        assert components.topology.num_agents == 4

    def test_splits_disjoint_sizes(self, components):
        spec = components.spec
        total = len(components.train) + len(components.validation) + len(components.test)
        assert total == spec.train_samples + spec.validation_samples + spec.test_samples
        assert len(components.validation) == spec.validation_samples
        assert len(components.test) == spec.test_samples

    def test_model_factory_produces_identical_models(self, components):
        a = components.model_factory()
        b = components.model_factory()
        np.testing.assert_array_equal(a.get_flat_params(), b.get_flat_params())

    def test_every_topology_name_supported(self):
        for topology in (
            "fully_connected",
            "ring",
            "bipartite",
            "star",
            "grid",
            "erdos_renyi",
            "random_regular",
            "small_world",
            "exponential",
        ):
            spec = fast_spec(num_agents=6, num_rounds=2).with_updates(topology=topology)
            comps = build_experiment_components(spec)
            assert comps.topology.num_agents == 6

    def test_square_and_power_of_two_topologies(self):
        torus = fast_spec(num_agents=9, num_rounds=2).with_updates(topology="torus")
        assert build_experiment_components(torus).topology.num_agents == 9
        cube = fast_spec(num_agents=8, num_rounds=2).with_updates(topology="hypercube")
        assert build_experiment_components(cube).topology.num_agents == 8
        with pytest.raises(ValueError, match="square"):
            build_experiment_components(
                fast_spec(num_agents=10).with_updates(topology="torus")
            )
        with pytest.raises(ValueError, match="power-of-two"):
            build_experiment_components(
                fast_spec(num_agents=10).with_updates(topology="hypercube")
            )

    def test_unknown_topology_rejected(self):
        spec = fast_spec(num_agents=4).with_updates(topology="moebius")
        with pytest.raises(ValueError):
            build_experiment_components(spec)

    def test_image_dataset_flattened_for_dense_models(self):
        spec = fast_spec(num_agents=4, num_rounds=2).with_updates(
            dataset="mnist", train_samples=150, validation_samples=30, test_samples=40, num_classes=4
        )
        comps = build_experiment_components(spec)
        assert len(comps.train.input_shape) == 1


class TestBuildAlgorithm:
    def test_pdsl_gets_validation_set(self, components):
        algorithm = build_algorithm("PDSL", components)
        assert isinstance(algorithm, PDSL)
        assert algorithm.validation is not None

    @pytest.mark.parametrize(
        "name", ["PDSL", "DP-DPSGD", "MUFFLIATO", "DP-CGA", "DP-NET-FLEET", "DMSGD", "D-PSGD"]
    )
    def test_all_algorithms_constructible(self, components, name):
        algorithm = build_algorithm(name, components)
        assert algorithm.num_agents == 4

    def test_unknown_algorithm_rejected(self, components):
        with pytest.raises(ValueError):
            build_algorithm("FedAvg", components)

    def test_sigma_override(self, components):
        algorithm = build_algorithm("DP-DPSGD", components, sigma=0.0)
        assert algorithm.sigma == 0.0

    def test_non_private_reference_has_zero_sigma(self, components):
        algorithm = build_algorithm("D-PSGD", components)
        assert algorithm.sigma == 0.0


class TestRunSingleAndComparison:
    def test_run_single_history_length(self, components):
        history = run_single("DP-DPSGD", components)
        assert len(history) == components.spec.num_rounds
        assert history.final_test_accuracy is not None

    def test_run_comparison_returns_all_algorithms(self):
        spec = fast_spec(num_agents=4, num_rounds=2, algorithms=["PDSL", "DP-DPSGD"])
        results = run_comparison(spec)
        assert set(results) == {"PDSL", "DP-DPSGD"}
        for history in results.values():
            assert len(history) == 2

    def test_run_comparison_algorithm_override(self):
        spec = fast_spec(num_agents=4, num_rounds=2)
        results = run_comparison(spec, algorithms=["DP-DPSGD"])
        assert set(results) == {"DP-DPSGD"}


class TestReporting:
    def make_histories(self):
        histories = {}
        for name, losses in [("A", [2.0, 1.0]), ("B", [2.0, 1.5])]:
            history = TrainingHistory(algorithm=name)
            for t, loss in enumerate(losses, start=1):
                history.append(RoundRecord(round=t, average_train_loss=loss))
            history.final_test_accuracy = 0.5
            histories[name] = history
        return histories

    def test_loss_curve_series(self):
        series = loss_curve_series(self.make_histories())
        assert series["A"] == [(1, 2.0), (2, 1.0)]

    def test_format_loss_curves_contains_all_algorithms(self):
        text = format_loss_curves(self.make_histories(), title="demo")
        assert "demo" in text
        assert "A" in text and "B" in text
        assert "2.0000" in text

    def test_format_loss_curves_empty(self):
        assert "(no results)" in format_loss_curves({})

    def test_format_loss_curves_max_rows(self):
        histories = self.make_histories()
        text = format_loss_curves(histories, max_rows=1)
        assert len(text.splitlines()) <= 5

    def test_accuracy_table_rows_and_formatting(self):
        histories = self.make_histories()
        results = {("ring", 10): histories, ("ring", 20): histories}
        table = accuracy_table_rows(results, algorithms=["A", "B"])
        assert table["A"][("ring", 10)] == 0.5
        text = format_accuracy_table(table, caption="Table demo")
        assert "Table demo" in text
        assert "ring" in text
        assert "0.500" in text

    def test_accuracy_table_missing_algorithm_skipped(self):
        histories = self.make_histories()
        table = accuracy_table_rows({("ring", 10): histories}, algorithms=["A", "C"])
        assert table["C"] == {}
