"""Tests for experiment-result serialisation."""

import json

import pytest

from repro.experiments.io import (
    history_from_dict,
    history_to_dict,
    load_histories,
    save_histories,
)
from repro.simulation.metrics import RoundRecord, TrainingHistory


def make_history(name="PDSL"):
    history = TrainingHistory(algorithm=name, metadata={"topology": "ring", "num_agents": 5})
    history.append(RoundRecord(round=1, average_train_loss=2.0, test_accuracy=0.2, consensus=0.5))
    history.append(RoundRecord(round=2, average_train_loss=1.5, test_accuracy=0.4, consensus=0.3,
                               extra={"sigma": 0.1}))
    history.final_test_accuracy = 0.45
    return history


class TestDictRoundTrip:
    def test_round_trip_preserves_everything(self):
        history = make_history()
        restored = history_from_dict(history_to_dict(history))
        assert restored.algorithm == history.algorithm
        assert restored.metadata == history.metadata
        assert restored.final_test_accuracy == history.final_test_accuracy
        assert restored.rounds == history.rounds
        assert restored.losses == history.losses
        assert [r.consensus for r in restored.records] == [r.consensus for r in history.records]
        assert restored.records[1].extra == {"sigma": 0.1}

    def test_payload_is_json_serialisable(self):
        payload = history_to_dict(make_history())
        text = json.dumps(payload)
        assert "PDSL" in text

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError):
            history_from_dict({"algorithm": "X"})

    def test_none_accuracy_preserved(self):
        history = TrainingHistory(algorithm="X")
        history.append(RoundRecord(round=1, average_train_loss=1.0))
        restored = history_from_dict(history_to_dict(history))
        assert restored.final_test_accuracy is None
        assert restored.records[0].test_accuracy is None


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        histories = {"PDSL": make_history("PDSL"), "DP-DPSGD": make_history("DP-DPSGD")}
        path = save_histories(histories, tmp_path / "results" / "run.json")
        assert path.exists()
        restored = load_histories(path)
        assert set(restored) == {"PDSL", "DP-DPSGD"}
        assert restored["PDSL"].losses == histories["PDSL"].losses

    def test_creates_parent_directories(self, tmp_path):
        path = save_histories({"X": make_history("X")}, tmp_path / "a" / "b" / "c.json")
        assert path.exists()

    def test_load_rejects_non_object_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ValueError):
            load_histories(path)


class TestAtomicWrites:
    def test_save_leaves_no_temporaries(self, tmp_path):
        target = tmp_path / "results" / "run.json"
        save_histories({"X": make_history("X")}, target)
        names = {p.name for p in target.parent.iterdir()}
        assert names == {"run.json"}

    def test_failed_write_preserves_previous_file(self, tmp_path):
        target = tmp_path / "run.json"
        save_histories({"X": make_history("X")}, target)
        before = target.read_text()

        class Unserializable:
            pass

        bad = make_history("Y")
        bad.metadata["payload"] = Unserializable()  # json.dumps will raise
        with pytest.raises(TypeError):
            save_histories({"Y": bad}, target)
        # The old complete file survives and no temp files linger.
        assert target.read_text() == before
        assert {p.name for p in tmp_path.iterdir()} == {"run.json"}

    def test_atomic_write_text_round_trip(self, tmp_path):
        from repro.simulation.checkpoint import atomic_write_text

        path = atomic_write_text(tmp_path / "deep" / "file.txt", "payload")
        assert path.read_text() == "payload"
