"""The experiment orchestrator: grids, run store, resume, pool, CLI.

Covers the durable-execution contracts end to end on tiny grids:

* grid expansion and parse-time validation (duplicate seeds/overrides,
  reserved keys, invalid resulting specs fail with the offending entry
  named);
* content-addressed run directories (stable hashes, config pinning,
  mismatch detection);
* skip-completed and resume-partial semantics, including that an
  interrupted-then-resumed grid reproduces the uninterrupted harness
  results exactly;
* process-pool execution matching serial execution;
* the ``repro-run`` CLI surface.
"""

import json
import os

import pytest

from repro.experiments.cli import main as cli_main
from repro.experiments.harness import build_experiment_components, run_single
from repro.experiments.orchestrator import (
    RunStore,
    job_config,
    job_hash,
    report_rows,
    run_grid,
    run_job,
)
from repro.experiments.report import aggregate_cells, format_cell_summary
from repro.experiments.specs import (
    ExperimentGrid,
    fast_spec,
    grid_from_dict,
    grid_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.simulation.metrics import histories_equal


def tiny_grid(seeds=(7, 8), algorithms=("DMSGD", "DP-DPSGD"), num_rounds=3):
    base = fast_spec(num_agents=4, num_rounds=num_rounds, algorithms=list(algorithms))
    return ExperimentGrid(base=base, algorithms=list(algorithms), seeds=list(seeds))


# ---------------------------------------------------------------------------
# Spec serialisation and grid expansion
# ---------------------------------------------------------------------------
class TestSpecsAndGrid:
    def test_spec_dict_round_trip(self):
        spec = fast_spec(num_agents=5, dynamics={"churn_rate": 0.1, "seed": 3})
        assert spec_from_dict(spec_to_dict(spec)) == spec

    def test_spec_from_dict_rejects_unknown_fields(self):
        payload = spec_to_dict(fast_spec())
        payload["learning_rte"] = 0.1
        with pytest.raises(ValueError, match="unknown spec fields.*learning_rte"):
            spec_from_dict(payload)

    def test_grid_expands_full_cross_product(self):
        grid = ExperimentGrid(
            base=fast_spec(num_agents=4, algorithms=["DMSGD"]),
            algorithms=["DMSGD", "DP-DPSGD"],
            seeds=[1, 2, 3],
            overrides=[{}, {"topology": "ring"}],
        )
        jobs = grid.jobs()
        assert len(jobs) == 2 * 3 * 2
        cells = {job.cell for job in jobs}
        assert len(cells) == 2  # base cell + the ring override cell
        assert any("topology=ring" in cell for cell in cells)
        assert sorted({job.seed for job in jobs}) == [1, 2, 3]

    def test_grid_rejects_duplicate_seeds(self):
        with pytest.raises(ValueError, match="duplicate seeds.*\\[7\\]"):
            ExperimentGrid(base=fast_spec(), seeds=[7, 8, 7])

    def test_grid_rejects_duplicate_overrides(self):
        with pytest.raises(ValueError, match="duplicates override #0"):
            ExperimentGrid(
                base=fast_spec(),
                overrides=[{"num_rounds": 5}, {"num_rounds": 5}],
            )

    def test_grid_rejects_reserved_override_keys(self):
        with pytest.raises(ValueError, match="reserved keys.*seed"):
            ExperimentGrid(base=fast_spec(), overrides=[{"seed": 3}])

    def test_grid_rejects_unknown_override_keys(self):
        with pytest.raises(ValueError, match="unknown spec fields.*topolgy"):
            ExperimentGrid(base=fast_spec(), overrides=[{"topolgy": "ring"}])

    def test_grid_rejects_non_positive_rounds_at_parse_time(self):
        with pytest.raises(ValueError, match="num_rounds.*positive"):
            ExperimentGrid(base=fast_spec(), overrides=[{"num_rounds": 0}])

    def test_grid_rejects_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithms"):
            ExperimentGrid(base=fast_spec(), algorithms=["PDSL", "SGD"])

    def test_grid_dict_round_trip(self):
        grid = tiny_grid()
        rebuilt = grid_from_dict(grid_to_dict(grid))
        assert [job_hash(j) for j in rebuilt.jobs()] == [
            job_hash(j) for j in grid.jobs()
        ]

    def test_grid_from_bare_spec_dict(self):
        grid = grid_from_dict(spec_to_dict(fast_spec(algorithms=["DMSGD"])))
        assert len(grid) == 1


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------
class TestJobHash:
    def test_hash_is_stable_across_reconstruction(self):
        assert [job_hash(j) for j in tiny_grid().jobs()] == [
            job_hash(j) for j in tiny_grid().jobs()
        ]

    def test_hash_distinguishes_every_axis(self):
        jobs = tiny_grid().jobs()
        hashes = {job_hash(job) for job in jobs}
        assert len(hashes) == len(jobs)

    def test_hash_changes_with_hyperparameters(self):
        a = tiny_grid(num_rounds=3).jobs()[0]
        b = tiny_grid(num_rounds=4).jobs()[0]
        assert job_hash(a) != job_hash(b)

    def test_hash_survives_growing_the_algorithm_roster(self):
        """Adding an algorithm to a campaign must not re-address done cells."""
        small = tiny_grid(algorithms=("DMSGD",))
        large = tiny_grid(algorithms=("DMSGD", "DP-DPSGD"))
        small_hashes = {job_hash(j) for j in small.jobs()}
        large_hashes = {job_hash(j) for j in large.jobs() if j.algorithm == "DMSGD"}
        assert small_hashes == large_hashes

    def test_store_pins_config_and_detects_mismatch(self, tmp_path):
        store = RunStore(tmp_path)
        job_a, job_b = tiny_grid().jobs()[:2]
        store.prepare(job_a)
        stored = json.loads((store.job_dir(job_a) / "spec.json").read_text())
        assert stored == job_config(job_a)
        # Simulate a hash collision / hand-edited directory.
        (store.job_dir(job_b)).mkdir(parents=True, exist_ok=True)
        (store.job_dir(job_b) / "spec.json").write_text(
            json.dumps(job_config(job_a))
        )
        with pytest.raises(ValueError, match="different\\s+configuration"):
            store.prepare(job_b)


# ---------------------------------------------------------------------------
# Execution: skip, resume, pool
# ---------------------------------------------------------------------------
class TestRunGrid:
    def test_run_then_rerun_serves_from_cache(self, tmp_path):
        grid = tiny_grid()
        first = run_grid(grid, tmp_path, workers=1, checkpoint_every=2)
        assert [r.status for r in first] == ["done"] * len(grid)
        second = run_grid(grid, tmp_path, workers=1)
        assert [r.status for r in second] == ["cached"] * len(grid)
        for a, b in zip(first, second):
            assert histories_equal(a.history, b.history)

    def test_interrupt_then_resume_matches_uninterrupted(self, tmp_path):
        grid = tiny_grid(seeds=(7, 8), algorithms=("DMSGD",), num_rounds=4)
        uninterrupted = run_grid(grid, tmp_path / "straight", workers=1)

        store_root = tmp_path / "interrupted"
        partial = run_grid(
            grid, store_root, workers=1, checkpoint_every=2, max_rounds_per_job=2
        )
        assert [r.status for r in partial] == ["partial"] * len(grid)
        store = RunStore(store_root)
        for job in grid.jobs():
            assert store.read_status(job)["status"] == "partial"
            assert store.latest_checkpoint(job) is not None

        resumed = run_grid(grid, store_root, workers=1, checkpoint_every=2)
        assert [r.status for r in resumed] == ["done"] * len(grid)
        for a, b in zip(uninterrupted, resumed):
            assert histories_equal(a.history, b.history)
        # Finished jobs drop their checkpoints (history.json is the artifact).
        for job in grid.jobs():
            assert store.latest_checkpoint(job) is None

    def test_orchestrated_cell_equals_run_single(self, tmp_path):
        grid = tiny_grid(seeds=(7,), algorithms=("DP-DPSGD",))
        [result] = run_grid(grid, tmp_path, workers=1)
        job = grid.jobs()[0]
        straight = run_single(job.algorithm, build_experiment_components(job.spec))
        assert histories_equal(straight, result.history)

    def test_process_pool_matches_serial(self, tmp_path):
        grid = tiny_grid(seeds=(7, 8), algorithms=("DMSGD",))
        serial = run_grid(grid, tmp_path / "serial", workers=1)
        pooled = run_grid(grid, tmp_path / "pooled", workers=2)
        for a, b in zip(serial, pooled):
            assert histories_equal(a.history, b.history)

    def test_failed_job_raises_with_description(self, tmp_path):
        # A PDSL job without enough validation data cannot be built; an
        # unknown-model override cannot slip through the grid, so instead
        # poison the store: a done marker with no history falls back to a
        # re-run, while a failure inside the worker surfaces per job.
        grid = tiny_grid(seeds=(7,), algorithms=("DMSGD",))
        job = grid.jobs()[0]
        store = RunStore(tmp_path)
        store.prepare(job)
        # Write a corrupt checkpoint: resume will fail inside the worker.
        (store.checkpoints_dir(job) / "round_000002.ckpt").write_bytes(b"garbage")
        with pytest.raises(RuntimeError, match="1 grid job\\(s\\) failed.*DMSGD"):
            run_grid(grid, tmp_path, workers=1)
        assert store.read_status(job)["status"] == "failed"
        results = run_grid(grid, tmp_path, workers=1, strict=False)
        assert results[0].status == "failed"

    def test_keyboard_interrupt_aborts_the_campaign(self, tmp_path, monkeypatch):
        """Ctrl-C must stop the serial loop, not mark jobs failed and continue."""
        import repro.experiments.orchestrator as orchestrator_module

        grid = tiny_grid(seeds=(7, 8), algorithms=("DMSGD",))
        jobs = grid.jobs()
        original_run = orchestrator_module.RunSession.run

        def interrupt_first_job(self, max_rounds=None):
            if self.algorithm.config.seed == 7:
                raise KeyboardInterrupt
            return original_run(self, max_rounds=max_rounds)

        monkeypatch.setattr(orchestrator_module.RunSession, "run", interrupt_first_job)
        with pytest.raises(KeyboardInterrupt):
            run_grid(grid, tmp_path, workers=1)
        store = RunStore(tmp_path)
        # The interrupted job is left "running" (like a SIGKILL), not
        # "failed", and the rest of the grid never ran.
        assert store.read_status(jobs[0])["status"] == "running"
        assert store.read_status(jobs[1])["status"] == "pending"
        monkeypatch.undo()
        resumed = run_grid(grid, tmp_path, workers=1)
        assert [r.status for r in resumed] == ["done", "done"]

    def test_done_marker_without_history_reruns(self, tmp_path):
        grid = tiny_grid(seeds=(7,), algorithms=("DMSGD",))
        job = grid.jobs()[0]
        store = RunStore(tmp_path)
        store.prepare(job)
        store.write_status(job, "done")
        history = run_job(job, store, checkpoint_every=2)
        assert history is not None
        assert store.read_status(job)["status"] == "done"

    def test_corrupt_status_degrades_to_rerun(self, tmp_path):
        grid = tiny_grid(seeds=(7,), algorithms=("DMSGD",))
        job = grid.jobs()[0]
        store = RunStore(tmp_path)
        store.prepare(job)
        (store.job_dir(job) / "status.json").write_text("{not json")
        assert store.read_status(job) == {"status": "pending"}
        [result] = run_grid(grid, tmp_path, workers=1)
        assert result.status == "done"

    def test_no_temp_files_left_behind(self, tmp_path):
        grid = tiny_grid(seeds=(7,), algorithms=("DMSGD",))
        run_grid(grid, tmp_path, workers=1, checkpoint_every=1)
        leftovers = [
            os.path.join(dirpath, name)
            for dirpath, _, names in os.walk(tmp_path)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------
class TestReporting:
    def test_aggregate_cells_mean_std(self, tmp_path):
        grid = tiny_grid(seeds=(7, 8), algorithms=("DMSGD",))
        results = run_grid(grid, tmp_path, workers=1)
        aggregated = aggregate_cells(report_rows(results))
        [(key, stats)] = list(aggregated.items())
        assert key[0] == "DMSGD"
        assert stats["seeds"] == 2.0
        assert stats["final_loss_std"] >= 0.0
        assert 0.0 <= stats["final_accuracy_mean"] <= 1.0

    def test_format_cell_summary_renders_every_cell(self, tmp_path):
        grid = tiny_grid(seeds=(7, 8))
        results = run_grid(grid, tmp_path, workers=1)
        text = format_cell_summary(report_rows(results))
        assert "DMSGD" in text and "DP-DPSGD" in text and "±" in text


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def write_spec(self, tmp_path, grid=None):
        grid = grid or tiny_grid(seeds=(7, 8), algorithms=("DMSGD",))
        spec_file = tmp_path / "campaign.json"
        spec_file.write_text(json.dumps(grid_to_dict(grid)))
        return spec_file

    def test_run_status_report_cycle(self, tmp_path, capsys):
        spec_file = self.write_spec(tmp_path)
        runs = str(tmp_path / "runs")
        assert cli_main(["run", str(spec_file), "--runs", runs]) == 0
        assert "2/2 job(s) complete" in capsys.readouterr().out
        assert cli_main(["status", str(spec_file), "--runs", runs]) == 0
        assert "done" in capsys.readouterr().out
        assert cli_main(["report", str(spec_file), "--runs", runs]) == 0
        assert "mean±std" in capsys.readouterr().out

    def test_interrupted_run_reports_incomplete_then_resume_completes(
        self, tmp_path, capsys
    ):
        spec_file = self.write_spec(tmp_path)
        runs = str(tmp_path / "runs")
        assert (
            cli_main(
                [
                    "run",
                    str(spec_file),
                    "--runs",
                    runs,
                    "--checkpoint-every",
                    "1",
                    "--max-rounds-per-job",
                    "1",
                ]
            )
            == 1
        )
        assert cli_main(["status", str(spec_file), "--runs", runs]) == 1
        assert "partial" in capsys.readouterr().out
        assert cli_main(["resume", str(spec_file), "--runs", runs]) == 0

    def test_bad_spec_file_is_a_clear_error(self, tmp_path, capsys):
        spec_file = tmp_path / "bad.json"
        spec_file.write_text("{not json")
        assert cli_main(["run", str(spec_file), "--runs", str(tmp_path)]) == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_missing_spec_file(self, tmp_path, capsys):
        assert (
            cli_main(["status", str(tmp_path / "nope.json"), "--runs", str(tmp_path)])
            == 2
        )
        assert "not found" in capsys.readouterr().err
