"""Tests for the privacy-frontier campaign and the final-checkpoint option."""

import json

import numpy as np
import pytest

from repro.experiments.orchestrator import RunStore, run_job
from repro.experiments.privacy_frontier import (
    FRONTIER_FILE,
    evaluate_job_attacks,
    frontier_grid,
    frontier_report,
    load_final_state,
    run_privacy_frontier,
)
from repro.experiments.specs import ExperimentGrid, fast_spec


def frontier_base(num_rounds=2):
    return fast_spec(
        num_agents=4, num_rounds=num_rounds, algorithms=["DP-DPSGD"], seed=7
    )


def single_job():
    grid = ExperimentGrid(base=frontier_base(), algorithms=["DP-DPSGD"], seeds=[7])
    (job,) = grid.jobs()
    return job


class TestFrontierGrid:
    def test_crosses_epsilons_with_codecs(self):
        grid = frontier_grid(
            frontier_base(),
            epsilons=[0.3, 3.0],
            codecs=[None, "topk", {"codec": "int8"}],
            algorithms=["DP-DPSGD"],
            seeds=[7],
        )
        assert len(grid.overrides) == 6
        epsilons = {override["epsilon"] for override in grid.overrides}
        assert epsilons == {0.3, 3.0}
        codecs = [override.get("compression") for override in grid.overrides]
        assert codecs.count(None) == 2
        assert {"codec": "topk"} in codecs and {"codec": "int8"} in codecs

    def test_requires_epsilons(self):
        with pytest.raises(ValueError):
            frontier_grid(frontier_base(), epsilons=[])


class TestFinalCheckpoint:
    def test_run_job_retains_exactly_one_final_checkpoint(self, tmp_path):
        job = single_job()
        store = RunStore(tmp_path)
        history = run_job(job, store, final_checkpoint=True)
        assert history is not None
        checkpoint = store.latest_checkpoint(job)
        assert checkpoint is not None
        assert len(list(store.checkpoints_dir(job).glob("*.ckpt"))) == 1
        state = load_final_state(store, job)
        assert state.shape[0] == job.spec.num_agents
        assert np.isfinite(state).all()

    def test_load_final_state_requires_a_checkpoint(self, tmp_path):
        job = single_job()
        store = RunStore(tmp_path)
        history = run_job(job, store)  # default: prune all checkpoints
        assert history is not None
        assert store.latest_checkpoint(job) is None
        with pytest.raises(FileNotFoundError, match="final_checkpoint=True"):
            load_final_state(store, job)


class TestPrivacyFrontier:
    def test_end_to_end_and_cached_rerun(self, tmp_path):
        grid = frontier_grid(
            frontier_base(),
            epsilons=[0.3, 3.0],
            algorithms=["DP-DPSGD"],
            seeds=[7],
        )
        points = run_privacy_frontier(
            grid,
            tmp_path,
            inversion_iterations=3,
            victim_batch=2,
            max_eval_samples=8,
        )
        assert [point.epsilon for point in points] == [0.3, 3.0]
        for point in points:
            assert point.algorithm == "DP-DPSGD"
            assert point.codec == "none"
            assert point.seeds == (7,)
            assert point.num_agents == 4
            assert np.isfinite(point.membership_advantage)
            assert 0.0 <= point.membership_accuracy <= 1.0
            assert np.isfinite(point.inversion_error)
            assert point.final_loss is not None

        artifact = json.loads((tmp_path / FRONTIER_FILE).read_text())
        assert artifact["schema"] == 1
        assert artifact["parameters"]["inversion_iterations"] == 3
        assert len(artifact["points"]) == len(points)
        assert artifact["points"][0]["epsilon"] == 0.3

        # Second invocation: training is served from the store, the attacks
        # are deterministic, so the frontier reproduces exactly.
        again = run_privacy_frontier(
            grid,
            tmp_path,
            inversion_iterations=3,
            victim_batch=2,
            max_eval_samples=8,
        )
        assert again == points

        report = frontier_report(points)
        assert report.count("| DP-DPSGD |") == 2
        assert "membership adv" in report

    def test_evaluate_job_attacks_is_deterministic(self, tmp_path):
        job = single_job()
        store = RunStore(tmp_path)
        run_job(job, store, final_checkpoint=True)
        first = evaluate_job_attacks(
            job, store, inversion_iterations=3, victim_batch=2, max_eval_samples=8
        )
        second = evaluate_job_attacks(
            job, store, inversion_iterations=3, victim_batch=2, max_eval_samples=8
        )
        assert first == second
        assert set(first) == {
            "membership_advantage",
            "membership_accuracy",
            "inversion_error",
            "inversion_matching_loss",
        }
