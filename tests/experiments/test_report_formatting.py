"""Table formatting in ``experiments/report.py``: mean±std, empty/partial cells."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.report import (
    aggregate_cells,
    format_accuracy_table,
    format_cell_summary,
    format_loss_curves,
)
from repro.simulation.metrics import RoundRecord, TrainingHistory


def history(
    algorithm: str,
    losses: list[float],
    final_accuracy: float | None = None,
) -> TrainingHistory:
    h = TrainingHistory(algorithm=algorithm)
    for i, loss in enumerate(losses, start=1):
        h.append(RoundRecord(round=i, average_train_loss=loss))
    h.final_test_accuracy = final_accuracy
    return h


class TestAggregateCells:
    def test_mean_and_population_std_over_seeds(self):
        rows = [
            ("PDSL", "cell", history("PDSL", [0.5, 0.2], final_accuracy=0.8)),
            ("PDSL", "cell", history("PDSL", [0.5, 0.4], final_accuracy=0.6)),
        ]
        stats = aggregate_cells(rows)[("PDSL", "cell")]
        assert stats["seeds"] == 2.0
        assert stats["final_loss_mean"] == pytest.approx(0.3)
        # Population std (ddof=0): the seeds are the replication set.
        assert stats["final_loss_std"] == pytest.approx(np.std([0.2, 0.4]))
        assert stats["final_accuracy_mean"] == pytest.approx(0.7)
        assert stats["final_accuracy_std"] == pytest.approx(np.std([0.8, 0.6]))

    def test_partial_accuracy_drops_the_accuracy_stats(self):
        rows = [
            ("PDSL", "cell", history("PDSL", [0.2], final_accuracy=0.8)),
            ("PDSL", "cell", history("PDSL", [0.4], final_accuracy=None)),
        ]
        stats = aggregate_cells(rows)[("PDSL", "cell")]
        assert "final_accuracy_mean" not in stats
        assert "final_accuracy_std" not in stats
        assert stats["final_loss_mean"] == pytest.approx(0.3)

    def test_empty_rows_aggregate_to_nothing(self):
        assert aggregate_cells([]) == {}


class TestFormatCellSummary:
    def test_mean_pm_std_rendering(self):
        rows = [
            ("PDSL", "ring/M=8", history("PDSL", [0.25], final_accuracy=0.9)),
            ("PDSL", "ring/M=8", history("PDSL", [0.35], final_accuracy=0.7)),
        ]
        text = format_cell_summary(rows)
        assert "0.3000±0.0500" in text  # final loss mean±std
        assert "0.800±0.100" in text  # final accuracy mean±std
        assert "ring/M=8" in text and "PDSL" in text

    def test_missing_accuracy_renders_a_dash(self):
        rows = [("DMSGD", "cell", history("DMSGD", [0.5], final_accuracy=None))]
        lines = format_cell_summary(rows).splitlines()
        assert lines[-1].rstrip().endswith("-")

    def test_empty_input_renders_header_only(self):
        lines = format_cell_summary([]).splitlines()
        assert lines[0] == "Grid summary (mean±std over seeds)"
        assert len(lines) == 2  # caption + column header, no data rows

    def test_rows_sorted_by_cell_then_algorithm(self):
        rows = [
            ("Z-ALG", "a-cell", history("Z-ALG", [0.1])),
            ("A-ALG", "b-cell", history("A-ALG", [0.2])),
            ("A-ALG", "a-cell", history("A-ALG", [0.3])),
        ]
        body = format_cell_summary(rows).splitlines()[2:]
        order = [(line[:38].strip(), line[38:52].strip()) for line in body]
        assert order == [
            ("a-cell", "A-ALG"),
            ("a-cell", "Z-ALG"),
            ("b-cell", "A-ALG"),
        ]

    def test_long_cell_names_are_truncated_not_misaligned(self):
        long_cell = "x" * 60
        rows = [("PDSL", long_cell, history("PDSL", [0.1]))]
        body = format_cell_summary(rows).splitlines()[2]
        assert long_cell[:37] in body
        assert long_cell[:38] not in body


class TestFormatLossCurves:
    def test_empty_histories_render_placeholder(self):
        assert format_loss_curves({}) == "Average training loss per round\n(no results)"

    def test_ragged_series_pad_with_blank_cells(self):
        histories = {
            "A": history("A", [0.5, 0.4, 0.3]),
            "B": history("B", [0.6]),  # shorter series: blank cells, no crash
        }
        lines = format_loss_curves(histories).splitlines()
        assert len(lines) == 2 + 3
        assert "0.3000" in lines[-1]
        assert lines[-1].rstrip().endswith("0.3000")  # B's column is blank

    def test_max_rows_strides_but_keeps_last_round(self):
        histories = {"A": history("A", [float(i) for i in range(10, 0, -1)])}
        lines = format_loss_curves(histories, max_rows=3).splitlines()
        assert lines[-1].startswith("   10")  # final round always present


class TestFormatAccuracyTable:
    def test_missing_cells_render_nan(self):
        table = {
            "PDSL": {("ring", 8): 0.9},
            "DMSGD": {},  # algorithm with no finished cells
        }
        text = format_accuracy_table(table)
        assert "0.900" in text
        assert "nan" in text
