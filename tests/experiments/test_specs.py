"""Tests for the experiment specification factories."""

import pytest

from repro.experiments.specs import (
    ALGORITHM_NAMES,
    ExperimentSpec,
    cifar_like_spec,
    fast_spec,
    mnist_like_spec,
    paper_figure_spec,
    paper_table_spec,
)


class TestExperimentSpecValidation:
    def test_defaults_are_valid(self):
        spec = ExperimentSpec(name="x")
        assert spec.num_agents == 10

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", dataset="imagenet")

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", model="transformer")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", algorithms=["PDSL", "FedAvg"])

    def test_too_few_agents_rejected(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="x", num_agents=1)

    def test_with_updates_returns_new_spec(self):
        spec = ExperimentSpec(name="x")
        updated = spec.with_updates(epsilon=0.9)
        assert updated.epsilon == 0.9
        assert spec.epsilon != 0.9


class TestFactories:
    def test_fast_spec_includes_all_paper_algorithms(self):
        spec = fast_spec()
        assert list(spec.algorithms) == list(ALGORITHM_NAMES)

    def test_mnist_fast_uses_paper_momentum(self):
        spec = mnist_like_spec()
        assert spec.momentum == 0.5

    def test_cifar_fast_uses_paper_momentum(self):
        spec = cifar_like_spec()
        assert spec.momentum == 0.7

    def test_mnist_paper_scale_uses_cnn_and_paper_hyperparams(self):
        spec = mnist_like_spec(scale="paper")
        assert spec.model == "mnist_cnn"
        assert spec.learning_rate == 0.001
        assert spec.batch_size == 250
        assert spec.num_rounds == 180

    def test_cifar_paper_scale_uses_cnn_and_paper_hyperparams(self):
        spec = cifar_like_spec(scale="paper")
        assert spec.model == "cifar_cnn"
        assert spec.learning_rate == 0.01
        assert spec.num_rounds == 200

    @pytest.mark.parametrize(
        "figure,expected_topology,expected_family",
        [
            (1, "fully_connected", "mnist"),
            (2, "bipartite", "mnist"),
            (3, "ring", "mnist"),
            (4, "fully_connected", "cifar"),
            (5, "bipartite", "cifar"),
            (6, "ring", "cifar"),
        ],
    )
    def test_paper_figure_specs(self, figure, expected_topology, expected_family):
        spec = paper_figure_spec(figure)
        assert spec.topology == expected_topology
        assert f"figure{figure}" in spec.name

    def test_unknown_figure_rejected(self):
        with pytest.raises(ValueError):
            paper_figure_spec(7)

    def test_figure_default_epsilon_is_largest_of_sweep(self):
        assert paper_figure_spec(1).epsilon == 0.3
        assert paper_figure_spec(4).epsilon == 1.0

    def test_paper_table_specs(self):
        spec1 = paper_table_spec(1, "ring", 10, 0.1)
        spec2 = paper_table_spec(2, "bipartite", 15, 0.7)
        assert spec1.topology == "ring" and spec1.num_agents == 10
        assert spec2.topology == "bipartite" and spec2.num_agents == 15
        with pytest.raises(ValueError):
            paper_table_spec(3, "ring", 10, 0.1)

    def test_custom_algorithm_subset(self):
        spec = fast_spec(algorithms=["PDSL", "DP-DPSGD"])
        assert list(spec.algorithms) == ["PDSL", "DP-DPSGD"]


class TestDynamicsField:
    def test_defaults_to_static(self):
        assert fast_spec().dynamics is None

    def test_valid_dynamics_accepted(self):
        spec = fast_spec(dynamics={"rewire_every": 50, "churn_rate": 0.01, "straggler_fraction": 0.1})
        assert spec.dynamics["rewire_every"] == 50

    def test_unknown_dynamics_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown dynamics keys"):
            fast_spec(dynamics={"rewire_interval": 50})

    def test_with_updates_carries_dynamics(self):
        spec = fast_spec().with_updates(dynamics={"churn_rate": 0.05})
        assert spec.dynamics == {"churn_rate": 0.05}

    def test_out_of_range_dynamics_values_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="churn_rate"):
            fast_spec(dynamics={"churn_rate": 2.0})

    def test_min_active_above_fleet_size_rejected_at_spec_time(self):
        with pytest.raises(ValueError, match="min_active"):
            fast_spec(num_agents=6, dynamics={"churn_rate": 0.1, "min_active": 10})


class TestScalingKnobs:
    def test_defaults(self):
        spec = fast_spec()
        assert spec.dtype == "float64"
        assert spec.block_rows is None
        assert spec.cluster_size is None

    def test_valid_knobs_accepted(self):
        spec = fast_spec(topology="hierarchical").with_updates(
            dtype="mixed", block_rows=4096, cluster_size=4
        )
        assert spec.dtype == "mixed"
        assert spec.block_rows == 4096
        assert spec.cluster_size == 4

    def test_unknown_dtype_rejected(self):
        with pytest.raises(ValueError, match="dtype"):
            fast_spec().with_updates(dtype="bfloat16")

    def test_nonpositive_block_rows_rejected(self):
        with pytest.raises(ValueError, match="block_rows"):
            fast_spec().with_updates(block_rows=0)

    def test_cluster_size_requires_hierarchical_topology(self):
        with pytest.raises(ValueError, match="cluster_size"):
            fast_spec(topology="ring").with_updates(cluster_size=4)

    def test_knobs_survive_serialization(self):
        from repro.experiments.specs import spec_from_dict, spec_to_dict

        spec = fast_spec(topology="hierarchical").with_updates(
            dtype="float32", block_rows=128, cluster_size=4
        )
        restored = spec_from_dict(spec_to_dict(spec))
        assert restored.dtype == "float32"
        assert restored.block_rows == 128
        assert restored.cluster_size == 4
        assert restored == spec


class TestTimeModelField:
    def test_defaults_to_real_time(self):
        assert fast_spec().time_model is None

    def test_valid_time_model_accepted(self):
        spec = fast_spec(num_agents=6).with_updates(
            time_model={
                "traces": {"kind": "synthetic", "seed": 3},
                "async": True,
                "staleness_decay": 0.1,
            }
        )
        assert spec.time_model["async"] is True

    def test_uniform_shorthand_accepted(self):
        spec = fast_spec().with_updates(time_model={"traces": "uniform"})
        assert spec.time_model == {"traces": "uniform"}

    def test_unknown_time_model_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown time_model keys"):
            fast_spec().with_updates(time_model={"trace": "uniform"})

    def test_non_bool_async_rejected(self):
        with pytest.raises(ValueError, match="async"):
            fast_spec().with_updates(time_model={"async": 1})

    def test_negative_staleness_decay_rejected(self):
        with pytest.raises(ValueError, match="staleness_decay"):
            fast_spec().with_updates(time_model={"staleness_decay": -0.5})

    def test_explicit_trace_list_must_match_fleet_size(self):
        traces = [{"compute_seconds": 1.0}] * 3
        with pytest.raises(ValueError, match="3 explicit traces"):
            fast_spec(num_agents=6).with_updates(time_model={"traces": traces})

    def test_time_model_survives_serialization(self):
        from repro.experiments.specs import spec_from_dict, spec_to_dict

        spec = fast_spec(num_agents=6).with_updates(
            time_model={"traces": {"kind": "synthetic", "seed": 3}, "async": True}
        )
        restored = spec_from_dict(spec_to_dict(spec))
        assert restored.time_model == spec.time_model
        assert restored == spec
