"""Tests for the cooperative-game abstraction."""

import pytest

from repro.game.cooperative import CooperativeGame, coalition_key


def additive_value(coalition):
    """Each player i contributes i+1 regardless of partners."""
    return float(sum(p + 1 for p in coalition))


class TestCoalitionKey:
    def test_order_invariant(self):
        assert coalition_key([1, 2, 3]) == coalition_key([3, 2, 1])

    def test_duplicates_collapse(self):
        assert coalition_key([1, 1, 2]) == coalition_key([1, 2])


class TestCooperativeGame:
    def test_empty_coalition_is_zero(self):
        game = CooperativeGame([0, 1, 2], additive_value)
        assert game.value([]) == 0.0

    def test_value_of_grand_coalition(self):
        game = CooperativeGame([0, 1, 2], additive_value)
        assert game.grand_coalition_value() == 6.0

    def test_value_order_invariant(self):
        game = CooperativeGame([0, 1, 2], additive_value)
        assert game.value([2, 0]) == game.value([0, 2])

    def test_marginal_contribution(self):
        game = CooperativeGame([0, 1, 2], additive_value)
        assert game.marginal_contribution(2, [0, 1]) == 3.0

    def test_marginal_contribution_player_already_in_coalition(self):
        game = CooperativeGame([0, 1], additive_value)
        with pytest.raises(ValueError):
            game.marginal_contribution(0, [0, 1])

    def test_unknown_player_rejected(self):
        game = CooperativeGame([0, 1], additive_value)
        with pytest.raises(ValueError):
            game.value([0, 5])

    def test_caching_avoids_reevaluation(self):
        calls = []

        def tracked(coalition):
            calls.append(coalition)
            return float(len(coalition))

        game = CooperativeGame([0, 1, 2], tracked, cache=True)
        game.value([0, 1])
        game.value([1, 0])
        game.value([0, 1])
        assert len(calls) == 1
        assert game.num_evaluations == 1

    def test_cache_disabled(self):
        calls = []

        def tracked(coalition):
            calls.append(coalition)
            return 1.0

        game = CooperativeGame([0, 1], tracked, cache=False)
        game.value([0])
        game.value([0])
        assert len(calls) == 2

    def test_requires_at_least_one_player(self):
        with pytest.raises(ValueError):
            CooperativeGame([], additive_value)

    def test_requires_distinct_players(self):
        with pytest.raises(ValueError):
            CooperativeGame([0, 0, 1], additive_value)

    def test_hashable_non_integer_players(self):
        game = CooperativeGame(["a", "b"], lambda c: float(len(c)))
        assert game.value(["a", "b"]) == 2.0
