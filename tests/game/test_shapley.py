"""Tests for exact / Monte-Carlo Shapley values, normalisation and weights (eqs. 18-20)."""

import numpy as np
import pytest

from repro.game.cooperative import CooperativeGame
from repro.game.shapley import (
    _monte_carlo_shapley_sequential,
    exact_shapley,
    monte_carlo_shapley,
    monte_carlo_shapley_fleet,
    normalize_shapley,
    shapley_aggregation_weights,
)


def additive_game(players, contributions):
    lookup = dict(zip(players, contributions))
    return CooperativeGame(players, lambda c: float(sum(lookup[p] for p in c)))


def glove_game():
    """Classic 3-player glove game: player 0 has a left glove, players 1,2 right gloves."""

    def value(coalition):
        left = 1 if 0 in coalition else 0
        right = sum(1 for p in coalition if p in (1, 2))
        return float(min(left, right))

    return CooperativeGame([0, 1, 2], value)


class TestExactShapley:
    def test_additive_game_gives_contributions(self):
        game = additive_game([0, 1, 2], [1.0, 2.0, 3.0])
        phi = exact_shapley(game)
        np.testing.assert_allclose([phi[0], phi[1], phi[2]], [1.0, 2.0, 3.0])

    def test_glove_game_known_values(self):
        phi = exact_shapley(glove_game())
        np.testing.assert_allclose(phi[0], 2.0 / 3.0, atol=1e-12)
        np.testing.assert_allclose(phi[1], 1.0 / 6.0, atol=1e-12)
        np.testing.assert_allclose(phi[2], 1.0 / 6.0, atol=1e-12)

    def test_efficiency(self):
        game = glove_game()
        phi = exact_shapley(game)
        np.testing.assert_allclose(sum(phi.values()), game.grand_coalition_value(), atol=1e-12)

    def test_single_player_game(self):
        game = CooperativeGame([7], lambda c: 5.0 if c else 0.0)
        phi = exact_shapley(game)
        assert phi[7] == 5.0

    def test_dummy_player_gets_zero(self):
        def value(coalition):
            return 1.0 if 0 in coalition else 0.0

        game = CooperativeGame([0, 1], value)
        phi = exact_shapley(game)
        np.testing.assert_allclose(phi[1], 0.0, atol=1e-12)

    def test_symmetric_players_equal(self):
        def value(coalition):
            return float(len(coalition) >= 2)

        game = CooperativeGame([0, 1, 2], value)
        phi = exact_shapley(game)
        assert abs(phi[0] - phi[1]) < 1e-12
        assert abs(phi[1] - phi[2]) < 1e-12


class TestMonteCarloShapley:
    def test_unbiased_for_additive_game(self):
        game = additive_game([0, 1, 2, 3], [1.0, 2.0, 3.0, 4.0])
        phi = monte_carlo_shapley(game, 50, np.random.default_rng(0))
        # additive games: every permutation gives the exact marginal, so MC is exact
        np.testing.assert_allclose([phi[i] for i in range(4)], [1.0, 2.0, 3.0, 4.0], atol=1e-12)

    def test_converges_to_exact(self):
        game = glove_game()
        exact = exact_shapley(game)
        estimate = monte_carlo_shapley(game, 3000, np.random.default_rng(1))
        for player in (0, 1, 2):
            assert abs(estimate[player] - exact[player]) < 0.05

    def test_efficiency_holds_per_sample(self):
        # permutation sampling preserves efficiency exactly for any R
        game = glove_game()
        phi = monte_carlo_shapley(game, 7, np.random.default_rng(2))
        np.testing.assert_allclose(sum(phi.values()), game.grand_coalition_value(), atol=1e-12)

    def test_deterministic_given_rng(self):
        game = glove_game()
        a = monte_carlo_shapley(game, 10, np.random.default_rng(5))
        b = monte_carlo_shapley(game, 10, np.random.default_rng(5))
        assert a == b

    def test_invalid_permutation_count(self):
        with pytest.raises(ValueError):
            monte_carlo_shapley(glove_game(), 0, np.random.default_rng(0))


def five_player_game():
    """5 players with superadditive pairwise synergies (non-trivial Shapley values)."""
    bonus = {frozenset({0, 1}): 1.5, frozenset({2, 3}): 0.75, frozenset({1, 4}): 0.5}

    def value(coalition):
        members = set(coalition)
        total = float(sum(0.2 * (p + 1) for p in members))
        for pair, extra in bonus.items():
            if pair <= members:
                total += extra
        return total

    return CooperativeGame([0, 1, 2, 3, 4], value)


class TestVectorizedMonteCarlo:
    """The batched estimator must match both the sequential walk and eq. 18."""

    def test_bitwise_identical_to_sequential_walk(self):
        # Same seed, same permutation stream, same marginal accumulation
        # order: the vectorized bookkeeping must not change a single bit.
        for seed in (0, 1, 42):
            vectorized = monte_carlo_shapley(
                five_player_game(), 16, np.random.default_rng(seed)
            )
            sequential = _monte_carlo_shapley_sequential(
                five_player_game(), 16, np.random.default_rng(seed)
            )
            assert vectorized == sequential

    def test_seeded_agreement_with_exact_on_five_players(self):
        game = five_player_game()
        exact = exact_shapley(game)
        estimate = monte_carlo_shapley(game, 5000, np.random.default_rng(11))
        for player in range(5):
            assert estimate[player] == pytest.approx(exact[player], abs=0.03)
        # Efficiency is preserved exactly by permutation sampling.
        np.testing.assert_allclose(
            sum(estimate.values()), game.grand_coalition_value(), atol=1e-9
        )

    def test_characteristic_call_order_matches_sequential(self):
        # The characteristic may consume its own RNG (validation-batch
        # subsampling), so the vectorized estimator must issue evaluations
        # for unique coalitions in the same first-encounter order.
        def record_calls(log):
            def value(coalition):
                log.append(tuple(coalition))
                return float(len(coalition))

            return value

        calls_vec, calls_seq = [], []
        monte_carlo_shapley(
            CooperativeGame(list("abcd"), record_calls(calls_vec)),
            6,
            np.random.default_rng(3),
        )
        _monte_carlo_shapley_sequential(
            CooperativeGame(list("abcd"), record_calls(calls_seq)),
            6,
            np.random.default_rng(3),
        )
        assert calls_vec == calls_seq

    def test_uncached_game_reinvokes_characteristic_on_repeats(self):
        # With cache=False the characteristic may be deliberately
        # stochastic, so repeated coalition queries must reach it again —
        # the estimator falls back to the sequential walk instead of its
        # evaluate-each-unique-coalition-once bookkeeping.
        def make_game(log):
            def value(coalition):
                log.append(tuple(coalition))
                return float(len(coalition))

            return CooperativeGame([0, 1, 2, 3], value, cache=False)

        calls_est, calls_ref = [], []
        estimate = monte_carlo_shapley(make_game(calls_est), 8, np.random.default_rng(4))
        reference = _monte_carlo_shapley_sequential(
            make_game(calls_ref), 8, np.random.default_rng(4)
        )
        assert estimate == reference
        assert calls_est == calls_ref  # repeats included, not deduplicated

    def test_hashable_player_labels(self):
        game = additive_game(["alpha", "beta", ("tuple", 1)], [1.0, 2.0, 3.0])
        phi = monte_carlo_shapley(game, 20, np.random.default_rng(0))
        np.testing.assert_allclose(
            [phi["alpha"], phi["beta"], phi[("tuple", 1)]], [1.0, 2.0, 3.0], atol=1e-12
        )

    def test_single_player(self):
        game = CooperativeGame([9], lambda c: 2.5 if c else 0.0)
        phi = monte_carlo_shapley(game, 3, np.random.default_rng(0))
        assert phi[9] == pytest.approx(2.5)


class TestFleetMonteCarlo:
    """The array-native large-N estimator (``monte_carlo_shapley_fleet``)."""

    @staticmethod
    def quadratic(weights):
        """Order-invariant but non-additive: sum of weights plus a size bonus."""

        def characteristic(members):
            return float(weights[members].sum()) + 0.01 * len(members) ** 2

        return characteristic

    def test_agrees_with_generic_estimator(self):
        n = 40
        weights = np.random.default_rng(3).normal(size=n) ** 2
        characteristic = self.quadratic(weights)
        game = CooperativeGame(
            list(range(n)), lambda c: characteristic(np.fromiter(c, dtype=np.int64))
        )
        generic = monte_carlo_shapley(game, 4, np.random.default_rng(5))
        fleet = monte_carlo_shapley_fleet(
            characteristic, n, 4, np.random.default_rng(5)
        )
        # Both estimators consume one rng.permutation per round, so the
        # sampled orders — and hence the estimates — coincide exactly.
        np.testing.assert_allclose(
            fleet, [generic[k] for k in range(n)], rtol=1e-12, atol=1e-12
        )

    def test_efficiency_exact_per_permutation(self):
        n = 257
        weights = np.random.default_rng(3).normal(size=n) ** 2
        characteristic = self.quadratic(weights)
        estimates = monte_carlo_shapley_fleet(
            characteristic, n, 1, np.random.default_rng(5)
        )
        grand = characteristic(np.arange(n, dtype=np.int64))
        # Marginals telescope along each permutation, so efficiency holds
        # exactly even with a single sampled permutation.
        np.testing.assert_allclose(estimates.sum(), grand, rtol=1e-9, atol=1e-9)

    def test_additive_characteristic_recovered_exactly(self):
        n = 129
        weights = np.random.default_rng(11).normal(size=n)
        estimates = monte_carlo_shapley_fleet(
            lambda members: float(weights[members].sum()),
            n,
            1,
            np.random.default_rng(7),
        )
        # Each marginal is a difference of two ~n-term prefix sums, so the
        # absolute error budget scales with eps * sum(|w|).
        np.testing.assert_allclose(
            estimates, weights, rtol=1e-9, atol=1e-12 * np.abs(weights).sum()
        )

    def test_deterministic_given_rng(self):
        characteristic = self.quadratic(np.arange(16, dtype=np.float64))
        a = monte_carlo_shapley_fleet(characteristic, 16, 3, np.random.default_rng(2))
        b = monte_carlo_shapley_fleet(characteristic, 16, 3, np.random.default_rng(2))
        np.testing.assert_array_equal(a, b)

    def test_invalid_arguments_rejected(self):
        characteristic = self.quadratic(np.ones(4))
        with pytest.raises(ValueError):
            monte_carlo_shapley_fleet(characteristic, 0, 1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            monte_carlo_shapley_fleet(characteristic, 4, 0, np.random.default_rng(0))


class TestNormalization:
    def test_min_maps_to_zero_max_to_one(self):
        normalized = normalize_shapley({0: 1.0, 1: 3.0, 2: 2.0})
        assert normalized[0] == 0.0
        assert normalized[1] == 1.0
        assert 0.0 < normalized[2] < 1.0

    def test_equal_values_map_to_ones(self):
        normalized = normalize_shapley({0: 0.5, 1: 0.5})
        assert normalized == {0: 1.0, 1: 1.0}

    def test_negative_values_supported(self):
        normalized = normalize_shapley({0: -2.0, 1: 0.0, 2: 2.0})
        np.testing.assert_allclose([normalized[0], normalized[1], normalized[2]], [0.0, 0.5, 1.0])

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError):
            normalize_shapley({})


class TestAggregationWeights:
    def test_formula(self):
        normalized = {0: 1.0, 1: 0.5}
        mixing = {0: 0.5, 1: 0.25}
        weights = shapley_aggregation_weights(normalized, mixing)
        # pi_j = phi_hat_j / (omega_j * sum_k phi_hat_k); sum = 1.5
        np.testing.assert_allclose(weights[0], 1.0 / (0.5 * 1.5))
        np.testing.assert_allclose(weights[1], 0.5 / (0.25 * 1.5))

    def test_zero_shapley_gives_zero_weight(self):
        weights = shapley_aggregation_weights({0: 0.0, 1: 1.0}, {0: 0.5, 1: 0.5})
        assert weights[0] == 0.0
        assert weights[1] > 0.0

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError):
            shapley_aggregation_weights({0: 1.0}, {1: 0.5})

    def test_nonpositive_mixing_weight_rejected(self):
        with pytest.raises(ValueError):
            shapley_aggregation_weights({0: 1.0}, {0: 0.0})

    def test_all_zero_shapley_values_do_not_crash(self):
        weights = shapley_aggregation_weights({0: 0.0, 1: 0.0}, {0: 0.5, 1: 0.5})
        assert weights[0] == 0.0 and weights[1] == 0.0
