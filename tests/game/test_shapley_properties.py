"""Property-based tests for the Shapley machinery (hypothesis)."""

import numpy as np
from hypothesis import assume, given, settings, strategies as st

from repro.game.axioms import (
    check_additivity,
    check_dummy_player,
    check_efficiency,
    check_symmetry,
)
from repro.game.cooperative import CooperativeGame
from repro.game.shapley import exact_shapley, monte_carlo_shapley, normalize_shapley


def random_game_from_weights(weights, interaction):
    """A small superadditive-ish game: additive part + pairwise interaction term."""
    players = list(range(len(weights)))

    def value(coalition):
        base = sum(weights[p] for p in coalition)
        pairs = len(coalition) * (len(coalition) - 1) / 2
        return float(base + interaction * pairs)

    return CooperativeGame(players, value)


@settings(max_examples=30, deadline=None)
@given(
    weights=st.lists(st.floats(-5, 5, allow_nan=False), min_size=2, max_size=5),
    interaction=st.floats(-1, 1, allow_nan=False),
)
def test_exact_shapley_is_efficient(weights, interaction):
    game = random_game_from_weights(weights, interaction)
    phi = exact_shapley(game)
    assert check_efficiency(game, phi, tol=1e-7)


@settings(max_examples=30, deadline=None)
@given(
    weights=st.lists(st.floats(-3, 3, allow_nan=False), min_size=2, max_size=5),
    interaction=st.floats(-1, 1, allow_nan=False),
    seed=st.integers(0, 10_000),
    permutations=st.integers(1, 20),
)
def test_monte_carlo_shapley_is_efficient_for_any_sample_count(weights, interaction, seed, permutations):
    game = random_game_from_weights(weights, interaction)
    phi = monte_carlo_shapley(game, permutations, np.random.default_rng(seed))
    assert check_efficiency(game, phi, tol=1e-7)


@settings(max_examples=30, deadline=None)
@given(weights=st.lists(st.floats(-5, 5, allow_nan=False), min_size=3, max_size=5))
def test_dummy_player_axiom(weights):
    # force player 0 to be a dummy by giving it zero weight in an additive game
    weights = [0.0] + list(weights[1:])
    game = random_game_from_weights(weights, 0.0)
    phi = exact_shapley(game)
    assert check_dummy_player(game, 0, phi, tol=1e-7)


@settings(max_examples=30, deadline=None)
@given(
    shared=st.floats(-3, 3, allow_nan=False),
    others=st.lists(st.floats(-3, 3, allow_nan=False), min_size=1, max_size=3),
)
def test_symmetry_axiom(shared, others):
    # players 0 and 1 share the same additive weight, hence are interchangeable
    weights = [shared, shared] + list(others)
    game = random_game_from_weights(weights, 0.0)
    phi = exact_shapley(game)
    assert check_symmetry(game, 0, 1, phi, tol=1e-7)


@settings(max_examples=20, deadline=None)
@given(
    w1=st.lists(st.floats(-2, 2, allow_nan=False), min_size=2, max_size=4),
    w2=st.lists(st.floats(-2, 2, allow_nan=False), min_size=2, max_size=4),
)
def test_additivity_axiom(w1, w2):
    size = min(len(w1), len(w2))
    w1, w2 = w1[:size], w2[:size]
    players = tuple(range(size))

    def v1(coalition):
        return float(sum(w1[p] for p in coalition))

    def v2(coalition):
        return float(sum(w2[p] ** 2 for p in coalition))

    assert check_additivity(players, v1, v2, tol=1e-7)


@settings(max_examples=50, deadline=None)
@given(
    values=st.dictionaries(
        keys=st.integers(0, 10),
        values=st.floats(-100, 100, allow_nan=False),
        min_size=1,
        max_size=8,
    )
)
def test_normalization_always_in_unit_interval(values):
    normalized = normalize_shapley(values)
    assert set(normalized.keys()) == set(values.keys())
    for v in normalized.values():
        assert -1e-12 <= v <= 1.0 + 1e-12


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.floats(-10, 10, allow_nan=False), min_size=2, max_size=6),
    shift=st.floats(-50, 50, allow_nan=False),
    scale=st.floats(0.1, 10, allow_nan=False),
)
def test_normalization_invariant_to_affine_transform(values, shift, scale):
    # Affine invariance holds away from the degenerate-spread cutoff
    # (spread <= 1e-12 collapses to all ones): keep both the raw and the
    # scaled spread on the same side of it.
    spread = max(values) - min(values)
    assume(spread == 0.0 or spread > 1e-6)
    raw = {i: v for i, v in enumerate(values)}
    transformed = {i: scale * v + shift for i, v in enumerate(values)}
    np.testing.assert_allclose(
        [normalize_shapley(raw)[i] for i in raw],
        [normalize_shapley(transformed)[i] for i in raw],
        atol=1e-6,
    )
