"""End-to-end integration tests reproducing the paper's qualitative claims at small scale.

These are the repository's "headline shape" checks:

* PDSL reaches a lower training loss and higher test accuracy than the
  heterogeneity-oblivious DP baselines under the same privacy budget;
* a larger privacy budget (less noise) gives PDSL equal-or-better accuracy;
* the non-private reference outperforms (or matches) its DP counterpart;
* the whole experiment harness runs for every paper topology.
"""

import numpy as np
import pytest

from repro.experiments.harness import build_experiment_components, run_comparison, run_single
from repro.experiments.specs import fast_spec


@pytest.fixture(scope="module")
def headline_results():
    spec = fast_spec(
        num_agents=6,
        epsilon=0.3,
        num_rounds=15,
        algorithms=["PDSL", "DP-DPSGD", "MUFFLIATO"],
        seed=7,
    )
    return run_comparison(spec)


class TestHeadlineClaim:
    def test_pdsl_has_lowest_final_loss(self, headline_results):
        losses = {name: h.final_loss() for name, h in headline_results.items()}
        assert losses["PDSL"] == min(losses.values())

    def test_pdsl_has_highest_accuracy(self, headline_results):
        accs = {name: h.final_test_accuracy for name, h in headline_results.items()}
        assert accs["PDSL"] == max(accs.values())

    def test_pdsl_improves_over_initial_loss(self, headline_results):
        history = headline_results["PDSL"]
        assert history.final_loss() < history.losses[0]

    def test_pdsl_beats_baselines_by_a_margin(self, headline_results):
        accs = {name: h.final_test_accuracy for name, h in headline_results.items()}
        others = [v for k, v in accs.items() if k != "PDSL"]
        assert accs["PDSL"] > max(others) + 0.05


class TestPrivacyUtilityTradeoff:
    def test_larger_epsilon_not_worse_for_pdsl(self):
        accuracies = {}
        for epsilon in (0.08, 1.0):
            spec = fast_spec(num_agents=5, epsilon=epsilon, num_rounds=12, algorithms=["PDSL"], seed=3)
            accuracies[epsilon] = run_comparison(spec)["PDSL"].final_test_accuracy
        assert accuracies[1.0] >= accuracies[0.08] - 0.05

    def test_non_private_reference_at_least_as_good_as_dp(self):
        spec = fast_spec(num_agents=5, epsilon=0.3, num_rounds=12, algorithms=["DP-DPSGD"], seed=3)
        components = build_experiment_components(spec)
        dp = run_single("DP-DPSGD", components)
        non_private = run_single("D-PSGD", components)
        assert non_private.final_test_accuracy >= dp.final_test_accuracy - 0.02


class TestTopologies:
    @pytest.mark.parametrize("topology", ["fully_connected", "bipartite", "ring"])
    def test_paper_topologies_run_end_to_end(self, topology):
        spec = fast_spec(
            num_agents=6, epsilon=0.3, topology=topology, num_rounds=5, algorithms=["PDSL"], seed=1
        )
        history = run_comparison(spec)["PDSL"]
        assert len(history) == 5
        assert history.final_test_accuracy is not None

    def test_denser_topology_not_worse_for_pdsl(self):
        results = {}
        for topology in ("fully_connected", "ring"):
            spec = fast_spec(
                num_agents=6, epsilon=0.3, topology=topology, num_rounds=15, algorithms=["PDSL"], seed=7
            )
            results[topology] = run_comparison(spec)["PDSL"].final_test_accuracy
        assert results["fully_connected"] >= results["ring"] - 0.05


class TestScalingWithAgents:
    def test_pdsl_stable_as_agents_increase(self):
        accs = {}
        for m in (4, 8):
            spec = fast_spec(num_agents=m, epsilon=0.3, num_rounds=12, algorithms=["PDSL"], seed=11)
            accs[m] = run_comparison(spec)["PDSL"].final_test_accuracy
        # The paper's key observation: PDSL's accuracy does not collapse as M grows.
        assert accs[8] >= accs[4] - 0.15
