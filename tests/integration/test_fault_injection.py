"""Integration tests under message loss (fault injection).

The paper assumes reliable synchronous communication; these tests document
how the implementation behaves when that assumption is relaxed, using the
Network's drop-probability hook.  PDSL and the baselines must stay
numerically stable (no NaNs, no crashes) and still make progress under
moderate message loss, because every aggregation step normalises over the
messages actually received.
"""

import numpy as np
import pytest

from repro.core.config import AlgorithmConfig, PDSLConfig
from repro.core.pdsl import PDSL
from repro.baselines.dp_dpsgd import DPDPSGD
from repro.data.partition import partition_dirichlet
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier
from repro.simulation.network import Network
from repro.topology.graphs import fully_connected_graph


def build(algorithm_cls, config, drop_probability, seed=0):
    data = make_classification_dataset(400, num_features=8, num_classes=4, cluster_std=0.6, seed=seed)
    topology = fully_connected_graph(5)
    rng = np.random.default_rng(seed)
    shards = partition_dirichlet(data, 5, alpha=0.5, rng=rng, min_samples_per_agent=8).shards
    validation = data.sample(60, rng)
    model = make_linear_classifier(8, 4, seed=seed)
    if algorithm_cls is PDSL:
        algorithm = PDSL(model, topology, shards, config, validation=validation)
    else:
        algorithm = algorithm_cls(model, topology, shards, config)
    # swap in a lossy network
    algorithm.network = Network(5, drop_probability=drop_probability, rng=np.random.default_rng(seed + 1))
    return algorithm


class TestPDSLUnderMessageLoss:
    def test_runs_and_stays_finite_with_heavy_loss(self):
        config = PDSLConfig(learning_rate=0.1, sigma=0.0, batch_size=16, seed=0, shapley_permutations=2)
        algorithm = build(PDSL, config, drop_probability=0.4)
        for _ in range(5):
            algorithm.run_round()
        assert all(np.isfinite(p).all() for p in algorithm.params)
        assert algorithm.network.messages_dropped > 0

    def test_still_learns_with_mild_loss(self):
        config = PDSLConfig(learning_rate=0.1, sigma=0.0, batch_size=16, seed=0, shapley_permutations=2)
        algorithm = build(PDSL, config, drop_probability=0.1)
        initial = algorithm.average_train_loss()
        for _ in range(12):
            algorithm.run_round()
        assert algorithm.average_train_loss() < initial

    def test_aggregation_weights_only_cover_received_neighbors(self):
        config = PDSLConfig(learning_rate=0.1, sigma=0.0, batch_size=16, seed=0, shapley_permutations=2)
        algorithm = build(PDSL, config, drop_probability=0.5)
        algorithm.run_round()
        for agent in range(5):
            received = set(algorithm.last_weights[agent].keys())
            neighbors = set(algorithm.topology.neighbors(agent, include_self=True))
            assert agent in received
            assert received <= neighbors


class TestBaselineUnderMessageLoss:
    def test_dpsgd_stays_finite(self):
        config = AlgorithmConfig(learning_rate=0.1, sigma=0.0, batch_size=16, seed=0)
        algorithm = build(DPDPSGD, config, drop_probability=0.3)
        for _ in range(8):
            algorithm.run_round()
        assert all(np.isfinite(p).all() for p in algorithm.params)

    def test_zero_drop_probability_equivalent_to_reliable_network(self):
        config = AlgorithmConfig(learning_rate=0.1, sigma=0.0, batch_size=16, seed=0)
        reliable = build(DPDPSGD, config, drop_probability=0.0, seed=2)
        config2 = AlgorithmConfig(learning_rate=0.1, sigma=0.0, batch_size=16, seed=0)
        lossless = build(DPDPSGD, config2, drop_probability=0.0, seed=2)
        for _ in range(3):
            reliable.run_round()
            lossless.run_round()
        for a, b in zip(reliable.params, lossless.params):
            np.testing.assert_array_equal(a, b)
