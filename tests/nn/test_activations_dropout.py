"""Tests for activation layers, Softmax, Dropout and Flatten."""

import numpy as np
import pytest

from repro.nn.layers import Dropout, Flatten, ReLU, Sigmoid, Softmax, Tanh


class TestReLU:
    def test_forward_clamps_negatives(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.0, 2.0]])
        np.testing.assert_allclose(relu.forward(x), [[0.0, 0.0, 2.0]])

    def test_backward_masks_gradient(self):
        relu = ReLU()
        x = np.array([[-1.0, 3.0], [2.0, -0.5]])
        relu.forward(x)
        grad = relu.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ReLU().backward(np.ones((1, 1)))

    def test_no_parameters(self):
        assert list(ReLU().parameters()) == []


class TestTanh:
    def test_forward_matches_numpy(self):
        layer = Tanh()
        x = np.linspace(-2, 2, 7).reshape(1, -1)
        np.testing.assert_allclose(layer.forward(x), np.tanh(x))

    def test_backward_derivative(self):
        layer = Tanh()
        x = np.array([[0.3, -0.7]])
        layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, 1 - np.tanh(x) ** 2)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Tanh().backward(np.ones((1, 1)))


class TestSigmoid:
    def test_range(self):
        layer = Sigmoid()
        x = np.array([[-100.0, 0.0, 100.0]])
        out = layer.forward(x)
        assert np.all(out >= 0) and np.all(out <= 1)
        np.testing.assert_allclose(out[0, 1], 0.5)

    def test_backward_derivative(self):
        layer = Sigmoid()
        x = np.array([[0.5, -1.5]])
        out = layer.forward(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, out * (1 - out))

    def test_extreme_values_no_overflow(self):
        layer = Sigmoid()
        out = layer.forward(np.array([[-1e6, 1e6]]))
        assert np.isfinite(out).all()


class TestSoftmax:
    def test_rows_sum_to_one(self):
        layer = Softmax()
        x = np.random.default_rng(0).normal(size=(5, 7))
        out = layer.forward(x)
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(5))

    def test_invariant_to_shift(self):
        layer = Softmax()
        x = np.random.default_rng(1).normal(size=(3, 4))
        out1 = layer.forward(x)
        out2 = layer.forward(x + 100.0)
        np.testing.assert_allclose(out1, out2, atol=1e-12)

    def test_backward_numerical(self):
        layer = Softmax()
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 4))
        grad_out = rng.normal(size=(2, 4))
        layer.forward(x)
        analytic = layer.backward(grad_out)

        eps = 1e-6
        numeric = np.zeros_like(x)
        for idx in np.ndindex(x.shape):
            orig = x[idx]
            x[idx] = orig + eps
            plus = float((layer.forward(x) * grad_out).sum())
            x[idx] = orig - eps
            minus = float((layer.forward(x) * grad_out).sum())
            x[idx] = orig
            numeric[idx] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestDropout:
    def test_identity_when_not_training(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(10, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_zero_rate_is_identity(self):
        layer = Dropout(0.0, np.random.default_rng(0))
        x = np.ones((4, 4))
        np.testing.assert_array_equal(layer.forward(x, training=True), x)

    def test_drops_roughly_rate_fraction(self):
        layer = Dropout(0.3, np.random.default_rng(0))
        x = np.ones((200, 200))
        out = layer.forward(x, training=True)
        dropped_fraction = np.mean(out == 0.0)
        assert abs(dropped_fraction - 0.3) < 0.02

    def test_inverted_scaling_preserves_expectation(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((500, 500))
        out = layer.forward(x, training=True)
        assert abs(out.mean() - 1.0) < 0.02

    def test_backward_uses_same_mask(self):
        layer = Dropout(0.5, np.random.default_rng(0))
        x = np.ones((20, 20))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0.0, out == 0.0)

    def test_rejects_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout(1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            Dropout(-0.1, np.random.default_rng(0))


class TestFlatten:
    def test_flattens_trailing_dims(self):
        layer = Flatten()
        x = np.zeros((3, 2, 4, 5))
        assert layer.forward(x).shape == (3, 40)

    def test_backward_restores_shape(self):
        layer = Flatten()
        x = np.random.default_rng(0).normal(size=(3, 2, 4))
        layer.forward(x)
        grad = layer.backward(np.ones((3, 8)))
        assert grad.shape == x.shape

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Flatten().backward(np.ones((1, 4)))
