"""Tests for the stacked multi-model engine (repro.nn.batched)."""

import numpy as np
import pytest

from repro.nn.batched import StackedSequential, supports_stacked
from repro.nn.layers import Dense, Dropout, Flatten, ReLU, Sigmoid, Tanh
from repro.nn.model import Sequential
from repro.nn.zoo import make_linear_classifier, make_mlp, make_mnist_cnn


def random_params(model, count, rng):
    base = model.get_flat_params()
    return np.stack(
        [base + 0.1 * rng.normal(size=base.shape) for _ in range(count)], axis=0
    )


class TestSupportsStacked:
    def test_linear_and_mlp_supported(self):
        assert supports_stacked(make_linear_classifier(6, 3))
        assert supports_stacked(make_mlp(6, 3, hidden_sizes=(8, 4)))

    def test_cnn_not_supported(self):
        assert not supports_stacked(make_mnist_cnn(num_classes=4, channels=(2, 4)))

    def test_dropout_not_supported(self):
        rng = np.random.default_rng(0)
        model = Sequential([Dense(6, 3, rng), Dropout(0.5, rng)])
        assert not supports_stacked(model)

    def test_sequential_subclass_not_supported(self):
        # A subclass may override the loss; the stacked engine hard-codes
        # softmax cross-entropy, so only plain Sequential qualifies.
        class MSESequential(Sequential):
            pass

        rng = np.random.default_rng(0)
        assert not supports_stacked(MSESequential([Dense(6, 3, rng)]))

    def test_constructor_rejects_unsupported(self):
        with pytest.raises(ValueError):
            StackedSequential(make_mnist_cnn(num_classes=4, channels=(2, 4)))


class TestStackedGradients:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda rng: make_linear_classifier(6, 3, seed=rng),
            lambda rng: make_mlp(6, 3, hidden_sizes=(8,), seed=rng),
            lambda rng: Sequential(
                [Dense(6, 8, rng), Tanh(), Dense(8, 5, rng), Sigmoid(), Dense(5, 3, rng)]
            ),
            lambda rng: Sequential([Flatten(), Dense(6, 3, rng)]),
        ],
    )
    def test_matches_per_model_loss_and_gradient(self, factory):
        rng = np.random.default_rng(0)
        model = factory(rng)
        engine = StackedSequential(model)
        m, batch = 7, 12
        params = random_params(model, m, rng)
        inputs = rng.normal(size=(m, batch, 6))
        labels = rng.integers(0, 3, size=(m, batch))
        losses, grads = engine.loss_and_gradients(params, inputs, labels)
        for k in range(m):
            expected_loss, expected_grad = model.loss_and_gradient(
                inputs[k], labels[k], params=params[k]
            )
            assert losses[k] == pytest.approx(expected_loss, rel=1e-12)
            np.testing.assert_allclose(grads[k], expected_grad, rtol=1e-10, atol=1e-12)

    def test_chunked_evaluation_matches_unchunked(self):
        rng = np.random.default_rng(3)
        model = make_mlp(6, 3, hidden_sizes=(8,), seed=0)
        full = StackedSequential(model)
        tiny_chunks = StackedSequential(model, max_chunk_elements=1)
        m, batch = 9, 4
        params = random_params(model, m, rng)
        inputs = rng.normal(size=(m, batch, 6))
        labels = rng.integers(0, 3, size=(m, batch))
        losses_a, grads_a = full.loss_and_gradients(params, inputs, labels)
        losses_b, grads_b = tiny_chunks.loss_and_gradients(params, inputs, labels)
        np.testing.assert_array_equal(losses_a, losses_b)
        np.testing.assert_array_equal(grads_a, grads_b)

    def test_relu_mask_uses_each_models_activation(self):
        # Two very different parameter vectors must produce different masks;
        # a buggy shared-mask implementation would make gradients agree.
        rng = np.random.default_rng(4)
        model = make_mlp(4, 2, hidden_sizes=(6,), seed=0)
        engine = StackedSequential(model)
        params = random_params(model, 2, rng)
        params[1] *= -3.0
        inputs = rng.normal(size=(2, 8, 4))
        labels = rng.integers(0, 2, size=(2, 8))
        _, grads = engine.loss_and_gradients(params, inputs, labels)
        assert not np.allclose(grads[0], grads[1])

    def test_shape_validation(self):
        model = make_linear_classifier(6, 3, seed=0)
        engine = StackedSequential(model)
        rng = np.random.default_rng(0)
        params = random_params(model, 3, rng)
        inputs = rng.normal(size=(3, 5, 6))
        labels = rng.integers(0, 3, size=(3, 5))
        with pytest.raises(ValueError):
            engine.loss_and_gradients(params[:, :-1], inputs, labels)
        with pytest.raises(ValueError):
            engine.loss_and_gradients(params, inputs[:2], labels)
