"""Tests for Conv2D and MaxPool2D: shapes, reference implementations, gradients."""

import numpy as np
import pytest

from repro.nn.layers import Conv2D, MaxPool2D


def reference_conv2d(x, weight, bias, stride, padding):
    """Naive direct convolution used as the ground truth."""
    n, c, h, w = x.shape
    oc, ic, kh, kw = weight.shape
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out_h = (x.shape[2] - kh) // stride + 1
    out_w = (x.shape[3] - kw) // stride + 1
    out = np.zeros((n, oc, out_h, out_w))
    for b in range(n):
        for o in range(oc):
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[b, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[b, o, i, j] = np.sum(patch * weight[o]) + (bias[o] if bias is not None else 0.0)
    return out


class TestConv2DForward:
    def test_output_shape_no_padding(self):
        layer = Conv2D(3, 4, kernel_size=3, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, 3, 8, 8))
        assert layer.forward(x).shape == (2, 4, 6, 6)

    def test_output_shape_with_padding(self):
        layer = Conv2D(1, 2, kernel_size=3, rng=np.random.default_rng(0), padding=1)
        x = np.random.default_rng(1).normal(size=(2, 1, 7, 7))
        assert layer.forward(x).shape == (2, 2, 7, 7)

    def test_matches_reference_implementation(self):
        layer = Conv2D(2, 3, kernel_size=3, rng=np.random.default_rng(0), padding=1)
        x = np.random.default_rng(1).normal(size=(2, 2, 5, 5))
        expected = reference_conv2d(x, layer.weight.value, layer.bias.value, 1, 1)
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-10)

    def test_matches_reference_with_stride(self):
        layer = Conv2D(1, 2, kernel_size=3, rng=np.random.default_rng(2), stride=2)
        x = np.random.default_rng(3).normal(size=(1, 1, 9, 9))
        expected = reference_conv2d(x, layer.weight.value, layer.bias.value, 2, 0)
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-10)

    def test_rejects_wrong_channels(self):
        layer = Conv2D(3, 4, kernel_size=3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 2, 8, 8)))

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Conv2D(1, 1, kernel_size=0, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            Conv2D(1, 1, kernel_size=3, rng=np.random.default_rng(0), padding=-1)


class TestConv2DBackward:
    def test_gradient_shapes(self):
        layer = Conv2D(2, 3, kernel_size=3, rng=np.random.default_rng(0), padding=1)
        x = np.random.default_rng(1).normal(size=(2, 2, 6, 6))
        out = layer.forward(x)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert layer.weight.grad.shape == layer.weight.value.shape
        assert layer.bias.grad.shape == layer.bias.value.shape

    def test_weight_gradient_numerical(self):
        layer = Conv2D(1, 2, kernel_size=2, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        x = rng.normal(size=(2, 1, 4, 4))
        grad_out_template = rng.normal(size=(2, 2, 3, 3))

        def objective():
            return float((layer.forward(x) * grad_out_template).sum())

        layer.zero_grad()
        layer.forward(x)
        layer.backward(grad_out_template)
        analytic = layer.weight.grad.copy()

        eps = 1e-6
        flat = layer.weight.value.ravel()
        numeric = np.zeros_like(flat)
        for k in range(flat.size):
            orig = flat[k]
            flat[k] = orig + eps
            plus = objective()
            flat[k] = orig - eps
            minus = objective()
            flat[k] = orig
            numeric[k] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic.ravel(), numeric, atol=1e-5)

    def test_input_gradient_numerical(self):
        layer = Conv2D(1, 1, kernel_size=2, rng=np.random.default_rng(5), padding=1)
        rng = np.random.default_rng(6)
        x = rng.normal(size=(1, 1, 3, 3))
        grad_out_template = rng.normal(size=(1, 1, 4, 4))

        layer.forward(x)
        analytic = layer.backward(grad_out_template)

        eps = 1e-6
        numeric = np.zeros_like(x)
        for idx in np.ndindex(x.shape):
            orig = x[idx]
            x[idx] = orig + eps
            plus = float((layer.forward(x) * grad_out_template).sum())
            x[idx] = orig - eps
            minus = float((layer.forward(x) * grad_out_template).sum())
            x[idx] = orig
            numeric[idx] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)


class TestMaxPool2D:
    def test_output_shape(self):
        pool = MaxPool2D(2)
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        assert pool.forward(x).shape == (2, 3, 4, 4)

    def test_selects_maximum(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        expected = np.array([[[[5.0, 7.0], [13.0, 15.0]]]])
        np.testing.assert_allclose(out, expected)

    def test_backward_routes_gradient_to_argmax(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad_in = pool.backward(np.ones((1, 1, 2, 2)))
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, 1, 1] = 1.0
        expected[0, 0, 1, 3] = 1.0
        expected[0, 0, 3, 1] = 1.0
        expected[0, 0, 3, 3] = 1.0
        np.testing.assert_allclose(grad_in, expected)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            MaxPool2D(2).backward(np.zeros((1, 1, 2, 2)))

    def test_gradient_numerical(self):
        pool = MaxPool2D(2)
        rng = np.random.default_rng(2)
        x = rng.normal(size=(1, 2, 4, 4))
        grad_out_template = rng.normal(size=(1, 2, 2, 2))
        pool.forward(x)
        analytic = pool.backward(grad_out_template)

        eps = 1e-6
        numeric = np.zeros_like(x)
        for idx in np.ndindex(x.shape):
            orig = x[idx]
            x[idx] = orig + eps
            plus = float((pool.forward(x) * grad_out_template).sum())
            x[idx] = orig - eps
            minus = float((pool.forward(x) * grad_out_template).sum())
            x[idx] = orig
            numeric[idx] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_rejects_bad_kernel(self):
        with pytest.raises(ValueError):
            MaxPool2D(0)
