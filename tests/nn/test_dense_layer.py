"""Tests for the Dense layer: forward correctness, backward vs. numerical gradients."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Parameter


@pytest.fixture
def layer():
    return Dense(5, 3, np.random.default_rng(0), name="test")


class TestDenseForward:
    def test_output_shape(self, layer):
        x = np.random.default_rng(1).normal(size=(7, 5))
        assert layer.forward(x).shape == (7, 3)

    def test_matches_manual_matmul(self, layer):
        x = np.random.default_rng(1).normal(size=(4, 5))
        expected = x @ layer.weight.value + layer.bias.value
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_no_bias(self):
        layer = Dense(5, 3, np.random.default_rng(0), use_bias=False)
        x = np.random.default_rng(1).normal(size=(4, 5))
        np.testing.assert_allclose(layer.forward(x), x @ layer.weight.value)
        assert len(list(layer.parameters())) == 1

    def test_rejects_wrong_input_dim(self, layer):
        with pytest.raises(ValueError):
            layer.forward(np.zeros((3, 6)))

    def test_rejects_1d_input(self, layer):
        with pytest.raises(ValueError):
            layer.forward(np.zeros(5))

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            Dense(0, 3, np.random.default_rng(0))
        with pytest.raises(ValueError):
            Dense(3, -1, np.random.default_rng(0))


class TestDenseBackward:
    def test_backward_before_forward_raises(self, layer):
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((2, 3)))

    def test_input_gradient_shape(self, layer):
        x = np.random.default_rng(1).normal(size=(6, 5))
        layer.forward(x)
        grad_in = layer.backward(np.ones((6, 3)))
        assert grad_in.shape == (6, 5)

    def test_weight_gradient_numerical(self, layer):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(3, 5))
        grad_out = rng.normal(size=(3, 3))
        layer.zero_grad()
        layer.forward(x)
        layer.backward(grad_out)
        analytic = layer.weight.grad.copy()

        eps = 1e-6
        numeric = np.zeros_like(layer.weight.value)
        for i in range(5):
            for j in range(3):
                orig = layer.weight.value[i, j]
                layer.weight.value[i, j] = orig + eps
                plus = float((layer.forward(x) * grad_out).sum())
                layer.weight.value[i, j] = orig - eps
                minus = float((layer.forward(x) * grad_out).sum())
                layer.weight.value[i, j] = orig
                numeric[i, j] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_bias_gradient_sums_over_batch(self, layer):
        x = np.random.default_rng(3).normal(size=(4, 5))
        grad_out = np.random.default_rng(4).normal(size=(4, 3))
        layer.zero_grad()
        layer.forward(x)
        layer.backward(grad_out)
        np.testing.assert_allclose(layer.bias.grad, grad_out.sum(axis=0))

    def test_gradients_accumulate(self, layer):
        x = np.ones((2, 5))
        grad_out = np.ones((2, 3))
        layer.zero_grad()
        layer.forward(x)
        layer.backward(grad_out)
        first = layer.weight.grad.copy()
        layer.forward(x)
        layer.backward(grad_out)
        np.testing.assert_allclose(layer.weight.grad, 2 * first)

    def test_zero_grad_resets(self, layer):
        x = np.ones((2, 5))
        layer.forward(x)
        layer.backward(np.ones((2, 3)))
        layer.zero_grad()
        assert np.all(layer.weight.grad == 0)
        assert np.all(layer.bias.grad == 0)


class TestParameter:
    def test_size_and_shape(self):
        p = Parameter(np.zeros((3, 4)), name="w")
        assert p.size == 12
        assert p.shape == (3, 4)

    def test_grad_initialised_to_zero(self):
        p = Parameter(np.ones((2, 2)))
        assert np.all(p.grad == 0)

    def test_zero_grad(self):
        p = Parameter(np.ones(3))
        p.grad += 5.0
        p.zero_grad()
        assert np.all(p.grad == 0)
