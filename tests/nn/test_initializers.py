"""Tests for weight initialisers."""

import math

import numpy as np
import pytest

from repro.nn.initializers import (
    fan_in_and_fan_out,
    glorot_uniform,
    he_normal,
    normal_init,
    zeros_init,
)


class TestFanInFanOut:
    def test_dense_shape(self):
        assert fan_in_and_fan_out((10, 20)) == (10, 20)

    def test_conv_shape(self):
        # (out_channels, in_channels, kh, kw)
        fan_in, fan_out = fan_in_and_fan_out((8, 3, 5, 5))
        assert fan_in == 3 * 25
        assert fan_out == 8 * 25

    def test_vector_shape(self):
        assert fan_in_and_fan_out((7,)) == (7, 7)

    def test_empty_shape(self):
        assert fan_in_and_fan_out(()) == (1, 1)


class TestGlorotUniform:
    def test_shape_and_dtype(self):
        rng = np.random.default_rng(0)
        w = glorot_uniform((6, 9), rng)
        assert w.shape == (6, 9)
        assert w.dtype == np.float64

    def test_within_limit(self):
        rng = np.random.default_rng(0)
        shape = (50, 80)
        limit = math.sqrt(6.0 / (50 + 80))
        w = glorot_uniform(shape, rng)
        assert np.all(np.abs(w) <= limit + 1e-12)

    def test_deterministic_given_seed(self):
        w1 = glorot_uniform((4, 4), np.random.default_rng(7))
        w2 = glorot_uniform((4, 4), np.random.default_rng(7))
        np.testing.assert_array_equal(w1, w2)

    def test_mean_near_zero(self):
        rng = np.random.default_rng(1)
        w = glorot_uniform((200, 200), rng)
        assert abs(w.mean()) < 0.01


class TestHeNormal:
    def test_shape(self):
        rng = np.random.default_rng(0)
        w = he_normal((16, 3, 3, 3), rng)
        assert w.shape == (16, 3, 3, 3)

    def test_std_matches_fan_in(self):
        rng = np.random.default_rng(2)
        fan_in = 3 * 7 * 7
        w = he_normal((64, 3, 7, 7), rng)
        expected_std = math.sqrt(2.0 / fan_in)
        assert abs(w.std() - expected_std) / expected_std < 0.15

    def test_deterministic(self):
        w1 = he_normal((5, 5), np.random.default_rng(3))
        w2 = he_normal((5, 5), np.random.default_rng(3))
        np.testing.assert_array_equal(w1, w2)


class TestNormalAndZeros:
    def test_normal_std(self):
        rng = np.random.default_rng(4)
        w = normal_init((500, 20), rng, std=0.05)
        assert abs(w.std() - 0.05) < 0.01

    def test_zeros(self):
        z = zeros_init((3, 4))
        assert z.shape == (3, 4)
        assert np.all(z == 0.0)

    def test_zeros_ignores_rng(self):
        z = zeros_init((2,), np.random.default_rng(0))
        assert np.all(z == 0.0)
