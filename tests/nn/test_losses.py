"""Tests for loss functions."""

import numpy as np
import pytest

from repro.nn.losses import l2_regularization, mean_squared_error, softmax_cross_entropy


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        logits = np.zeros((4, 10))
        labels = np.array([0, 3, 5, 9])
        loss, _ = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(loss, np.log(10), rtol=1e-10)

    def test_perfect_prediction_low_loss(self):
        logits = np.full((2, 3), -50.0)
        logits[0, 1] = 50.0
        logits[1, 2] = 50.0
        loss, _ = softmax_cross_entropy(logits, np.array([1, 2]))
        assert loss < 1e-6

    def test_gradient_shape_and_scale(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        _, grad = softmax_cross_entropy(logits, labels)
        assert grad.shape == logits.shape
        # gradient rows sum to zero for the mean reduction (softmax minus one-hot)
        np.testing.assert_allclose(grad.sum(), 0.0, atol=1e-12)

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 5))
        labels = rng.integers(0, 5, size=3)
        _, analytic = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for idx in np.ndindex(logits.shape):
            orig = logits[idx]
            logits[idx] = orig + eps
            plus, _ = softmax_cross_entropy(logits, labels)
            logits[idx] = orig - eps
            minus, _ = softmax_cross_entropy(logits, labels)
            logits[idx] = orig
            numeric[idx] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_sum_reduction(self):
        logits = np.zeros((4, 2))
        labels = np.zeros(4, dtype=int)
        loss_mean, grad_mean = softmax_cross_entropy(logits, labels, reduction="mean")
        loss_sum, grad_sum = softmax_cross_entropy(logits, labels, reduction="sum")
        np.testing.assert_allclose(loss_sum, loss_mean * 4)
        np.testing.assert_allclose(grad_sum, grad_mean * 4)

    def test_numerical_stability_large_logits(self):
        logits = np.array([[1e4, -1e4], [-1e4, 1e4]])
        labels = np.array([0, 1])
        loss, grad = softmax_cross_entropy(logits, labels)
        assert np.isfinite(loss)
        assert np.isfinite(grad).all()

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((3, 2, 1)), np.zeros(3, dtype=int))
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((3, 2)), np.zeros(4, dtype=int))

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 3]))

    def test_rejects_unknown_reduction(self):
        with pytest.raises(ValueError):
            softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 1]), reduction="avg")


class TestMeanSquaredError:
    def test_zero_for_identical(self):
        x = np.random.default_rng(0).normal(size=(5, 3))
        loss, grad = mean_squared_error(x, x.copy())
        assert loss == 0.0
        np.testing.assert_allclose(grad, 0.0)

    def test_known_value(self):
        pred = np.array([[1.0, 2.0]])
        target = np.array([[0.0, 0.0]])
        loss, _ = mean_squared_error(pred, target, reduction="sum")
        np.testing.assert_allclose(loss, 0.5 * (1 + 4))

    def test_gradient_matches_numerical(self):
        rng = np.random.default_rng(1)
        pred = rng.normal(size=(3, 2))
        target = rng.normal(size=(3, 2))
        _, analytic = mean_squared_error(pred, target)
        eps = 1e-6
        numeric = np.zeros_like(pred)
        for idx in np.ndindex(pred.shape):
            orig = pred[idx]
            pred[idx] = orig + eps
            plus, _ = mean_squared_error(pred, target)
            pred[idx] = orig - eps
            minus, _ = mean_squared_error(pred, target)
            pred[idx] = orig
            numeric[idx] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            mean_squared_error(np.zeros((2, 3)), np.zeros((3, 2)))


class TestL2Regularization:
    def test_value_and_gradient(self):
        x = np.array([3.0, 4.0])
        loss, grad = l2_regularization(x, weight_decay=0.1)
        np.testing.assert_allclose(loss, 0.5 * 0.1 * 25)
        np.testing.assert_allclose(grad, 0.1 * x)

    def test_zero_decay(self):
        loss, grad = l2_regularization(np.ones(5), 0.0)
        assert loss == 0.0
        np.testing.assert_allclose(grad, 0.0)

    def test_rejects_negative_decay(self):
        with pytest.raises(ValueError):
            l2_regularization(np.ones(3), -1.0)
