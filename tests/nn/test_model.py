"""Tests for the Model/Sequential containers and the flat-parameter interface."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.zoo import make_linear_classifier, make_mlp


@pytest.fixture
def model():
    rng = np.random.default_rng(0)
    return Sequential([Dense(6, 8, rng), ReLU(), Dense(8, 3, rng)])


class TestFlatParameters:
    def test_num_params(self, model):
        expected = 6 * 8 + 8 + 8 * 3 + 3
        assert model.num_params == expected

    def test_get_set_roundtrip(self, model):
        flat = model.get_flat_params()
        assert flat.shape == (model.num_params,)
        new = np.arange(model.num_params, dtype=np.float64)
        model.set_flat_params(new)
        np.testing.assert_array_equal(model.get_flat_params(), new)

    def test_set_rejects_wrong_size(self, model):
        with pytest.raises(ValueError):
            model.set_flat_params(np.zeros(model.num_params + 1))

    def test_get_returns_copy(self, model):
        flat = model.get_flat_params()
        flat[:] = 999.0
        assert not np.allclose(model.get_flat_params(), 999.0)

    def test_grad_roundtrip(self, model):
        grads = np.linspace(0, 1, model.num_params)
        model.set_flat_grads(grads)
        np.testing.assert_allclose(model.get_flat_grads(), grads)

    def test_zero_grad(self, model):
        model.set_flat_grads(np.ones(model.num_params))
        model.zero_grad()
        np.testing.assert_allclose(model.get_flat_grads(), 0.0)

    def test_clone_independent(self, model):
        clone = model.clone()
        clone.set_flat_params(np.zeros(model.num_params))
        assert not np.allclose(model.get_flat_params(), 0.0)


class TestLossAndGradient:
    def test_loss_and_gradient_shapes(self, model):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(10, 6))
        y = rng.integers(0, 3, size=10)
        loss, grad = model.loss_and_gradient(x, y)
        assert np.isscalar(loss) or isinstance(loss, float)
        assert grad.shape == (model.num_params,)

    def test_gradient_at_other_params_restores_state(self, model):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(4, 6))
        y = rng.integers(0, 3, size=4)
        original = model.get_flat_params()
        other = original + 1.0
        model.loss_and_gradient(x, y, params=other)
        np.testing.assert_array_equal(model.get_flat_params(), original)

    def test_cross_gradient_differs_from_local(self, model):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(8, 6))
        y = rng.integers(0, 3, size=8)
        _, grad_local = model.loss_and_gradient(x, y)
        _, grad_other = model.loss_and_gradient(x, y, params=model.get_flat_params() + 0.5)
        assert not np.allclose(grad_local, grad_other)

    def test_analytic_gradient_matches_numerical(self):
        model = make_mlp(5, 3, hidden_sizes=(4,), seed=0)
        rng = np.random.default_rng(4)
        x = rng.normal(size=(6, 5))
        y = rng.integers(0, 3, size=6)
        max_err, _, _ = check_gradients(model, x, y, eps=1e-5)
        assert max_err < 1e-5

    def test_evaluate_loss_consistent_with_loss_and_gradient(self, model):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(7, 6))
        y = rng.integers(0, 3, size=7)
        loss1, _ = model.loss_and_gradient(x, y)
        loss2 = model.evaluate_loss(x, y)
        np.testing.assert_allclose(loss1, loss2)


class TestPredictionAndAccuracy:
    def test_predict_shape(self, model):
        x = np.random.default_rng(0).normal(size=(9, 6))
        preds = model.predict(x)
        assert preds.shape == (9,)
        assert preds.dtype.kind == "i"

    def test_accuracy_bounds(self, model):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(20, 6))
        y = rng.integers(0, 3, size=20)
        acc = model.accuracy(x, y)
        assert 0.0 <= acc <= 1.0

    def test_accuracy_perfect_when_labels_match_predictions(self, model):
        x = np.random.default_rng(2).normal(size=(15, 6))
        preds = model.predict(x)
        assert model.accuracy(x, preds) == 1.0

    def test_accuracy_at_params(self, model):
        x = np.random.default_rng(3).normal(size=(10, 6))
        y = np.random.default_rng(4).integers(0, 3, size=10)
        original = model.get_flat_params()
        acc = model.accuracy(x, y, params=np.zeros(model.num_params))
        np.testing.assert_array_equal(model.get_flat_params(), original)
        assert 0.0 <= acc <= 1.0

    def test_accuracy_mismatched_batch_raises(self, model):
        with pytest.raises(ValueError):
            model.accuracy(np.zeros((3, 6)), np.zeros(4, dtype=int))


class TestSequentialValidation:
    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_len_and_iter(self, model):
        assert len(model) == 3
        assert len(list(iter(model))) == 3

    def test_training_reduces_loss_on_separable_data(self):
        model = make_linear_classifier(4, 3, seed=0)
        rng = np.random.default_rng(0)
        centers = np.eye(3, 4) * 5
        labels = rng.integers(0, 3, size=200)
        x = centers[labels] + rng.normal(0, 0.3, size=(200, 4))
        initial = model.evaluate_loss(x, labels)
        params = model.get_flat_params()
        for _ in range(60):
            _, grad = model.loss_and_gradient(x, labels, params=params)
            params = params - 0.5 * grad
        final = model.evaluate_loss(x, labels, params=params)
        assert final < initial * 0.5
        assert model.accuracy(x, labels, params=params) > 0.9
