"""Tests for the model factories (architectures from the paper's evaluation)."""

import numpy as np
import pytest

from repro.nn.gradcheck import check_gradients
from repro.nn.zoo import make_cifar_cnn, make_linear_classifier, make_mlp, make_mnist_cnn


class TestLinearAndMLP:
    def test_linear_output_shape(self):
        model = make_linear_classifier(12, 5, seed=0)
        x = np.random.default_rng(0).normal(size=(3, 12))
        assert model.forward(x).shape == (3, 5)

    def test_mlp_hidden_sizes(self):
        model = make_mlp(10, 4, hidden_sizes=(16, 8), seed=0)
        x = np.random.default_rng(0).normal(size=(2, 10))
        assert model.forward(x).shape == (2, 4)
        # Dense(10->16) + Dense(16->8) + Dense(8->4) with biases
        assert model.num_params == 10 * 16 + 16 + 16 * 8 + 8 + 8 * 4 + 4

    def test_same_seed_same_parameters(self):
        a = make_mlp(6, 3, seed=42)
        b = make_mlp(6, 3, seed=42)
        np.testing.assert_array_equal(a.get_flat_params(), b.get_flat_params())

    def test_different_seed_different_parameters(self):
        a = make_mlp(6, 3, seed=1)
        b = make_mlp(6, 3, seed=2)
        assert not np.allclose(a.get_flat_params(), b.get_flat_params())


class TestMnistCNN:
    def test_output_shape(self):
        model = make_mnist_cnn(num_classes=10, channels=(2, 4), image_size=28, seed=0)
        x = np.random.default_rng(0).random((2, 1, 28, 28))
        assert model.forward(x).shape == (2, 10)

    def test_smaller_image_size(self):
        model = make_mnist_cnn(num_classes=5, channels=(2, 3), image_size=12, seed=0)
        x = np.random.default_rng(0).random((1, 1, 12, 12))
        assert model.forward(x).shape == (1, 5)

    def test_architecture_is_two_conv_two_pool_one_fc(self):
        from repro.nn.layers import Conv2D, Dense, MaxPool2D

        model = make_mnist_cnn(channels=(2, 4), image_size=28, seed=0)
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        pools = [l for l in model.layers if isinstance(l, MaxPool2D)]
        denses = [l for l in model.layers if isinstance(l, Dense)]
        assert len(convs) == 2 and len(pools) == 2 and len(denses) == 1
        assert all(c.kernel_size == 3 for c in convs)

    def test_gradients_correct(self):
        model = make_mnist_cnn(num_classes=3, channels=(1, 2), image_size=8, seed=0)
        rng = np.random.default_rng(1)
        x = rng.random((2, 1, 8, 8))
        y = rng.integers(0, 3, size=2)
        max_err, _, _ = check_gradients(model, x, y, eps=1e-5)
        assert max_err < 1e-4


class TestCifarCNN:
    def test_output_shape(self):
        model = make_cifar_cnn(num_classes=10, channels=(2, 3), hidden=8, image_size=32, seed=0)
        x = np.random.default_rng(0).random((2, 3, 32, 32))
        assert model.forward(x).shape == (2, 10)

    def test_architecture_is_two_conv_two_fc(self):
        from repro.nn.layers import Conv2D, Dense

        model = make_cifar_cnn(channels=(2, 3), hidden=8, image_size=32, seed=0)
        convs = [l for l in model.layers if isinstance(l, Conv2D)]
        denses = [l for l in model.layers if isinstance(l, Dense)]
        assert len(convs) == 2 and len(denses) == 2
        assert all(c.kernel_size == 5 for c in convs)

    def test_too_small_image_rejected(self):
        with pytest.raises(ValueError):
            make_cifar_cnn(image_size=8, seed=0)

    def test_gradients_correct(self):
        model = make_cifar_cnn(num_classes=2, channels=(1, 1), hidden=4, image_size=16, in_channels=1, seed=0)
        rng = np.random.default_rng(2)
        x = rng.random((2, 1, 16, 16))
        y = rng.integers(0, 2, size=2)
        max_err, _, _ = check_gradients(model, x, y, eps=1e-5)
        assert max_err < 1e-4
