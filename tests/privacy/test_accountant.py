"""Tests for the privacy accountant."""

import pytest

from repro.privacy.accountant import CompositionMethod, PrivacyAccountant


class TestBasicComposition:
    def test_single_event(self):
        acc = PrivacyAccountant()
        acc.record(0.5, 1e-5)
        eps, delta = acc.total_basic()
        assert eps == 0.5
        assert delta == 1e-5

    def test_budgets_add_up(self):
        acc = PrivacyAccountant()
        acc.record(0.1, 1e-6, count=10)
        eps, delta = acc.total_basic()
        assert abs(eps - 1.0) < 1e-12
        assert abs(delta - 1e-5) < 1e-15

    def test_delta_capped_at_one(self):
        acc = PrivacyAccountant()
        acc.record(0.1, 0.4, count=5)
        _, delta = acc.total_basic()
        assert delta == 1.0

    def test_empty_accountant(self):
        acc = PrivacyAccountant()
        assert acc.total_basic() == (0.0, 0.0)
        assert acc.total_advanced() == (0.0, 0.0)

    def test_reset(self):
        acc = PrivacyAccountant()
        acc.record(1.0, 1e-5)
        acc.reset()
        assert acc.num_events == 0
        assert acc.total_basic() == (0.0, 0.0)


class TestAdvancedComposition:
    def test_beats_basic_for_many_small_events(self):
        acc = PrivacyAccountant()
        acc.record(0.01, 1e-7, count=1000)
        basic_eps, _ = acc.total_basic()
        adv_eps, _ = acc.total_advanced(delta_slack=1e-5)
        assert adv_eps < basic_eps

    def test_advanced_delta_includes_slack(self):
        acc = PrivacyAccountant()
        acc.record(0.1, 1e-6, count=10)
        _, delta = acc.total_advanced(delta_slack=1e-4)
        assert abs(delta - (10 * 1e-6 + 1e-4)) < 1e-12

    def test_heterogeneous_events_fall_back_to_basic(self):
        acc = PrivacyAccountant()
        acc.record(0.1, 1e-6)
        acc.record(0.2, 1e-6)
        assert acc.total_advanced() == acc.total_basic()

    def test_zero_epsilon_events(self):
        acc = PrivacyAccountant()
        acc.record(0.0, 1e-6, count=5)
        eps, delta = acc.total_advanced()
        assert eps == 0.0
        assert abs(delta - 5e-6) < 1e-15

    def test_invalid_slack(self):
        acc = PrivacyAccountant()
        acc.record(0.1, 1e-6)
        with pytest.raises(ValueError):
            acc.total_advanced(delta_slack=0.0)


class TestRecordingAndDispatch:
    def test_invalid_epsilon_delta(self):
        acc = PrivacyAccountant()
        with pytest.raises(ValueError):
            acc.record(-0.1, 1e-5)
        with pytest.raises(ValueError):
            acc.record(0.1, 1.0)
        with pytest.raises(ValueError):
            acc.record(0.1, 1e-5, count=0)

    def test_total_dispatch(self):
        acc = PrivacyAccountant()
        acc.record(0.2, 1e-6, count=4)
        assert acc.total(CompositionMethod.BASIC) == acc.total_basic()
        assert acc.total(CompositionMethod.ADVANCED) == acc.total_advanced()

    def test_total_rejects_unknown_method(self):
        acc = PrivacyAccountant()
        with pytest.raises(ValueError):
            acc.total("renyi")  # type: ignore[arg-type]

    def test_num_events(self):
        acc = PrivacyAccountant()
        acc.record(0.1, 1e-6, count=3)
        acc.record(0.2, 1e-6)
        assert acc.num_events == 4
