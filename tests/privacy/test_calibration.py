"""Tests for noise calibration (classic Gaussian mechanism and Theorem 1)."""

import math

import numpy as np
import pytest

from repro.privacy.calibration import (
    epsilon_for_sigma,
    gaussian_sigma,
    pdsl_sigma_for_topology,
    pdsl_sigma_lower_bound,
)
from repro.topology.graphs import fully_connected_graph, ring_graph


class TestGaussianSigma:
    def test_known_value(self):
        sigma = gaussian_sigma(epsilon=1.0, delta=1e-5, sensitivity=1.0)
        expected = math.sqrt(2 * math.log(1.25e5))
        np.testing.assert_allclose(sigma, expected)

    def test_smaller_epsilon_more_noise(self):
        assert gaussian_sigma(0.1, 1e-5, 1.0) > gaussian_sigma(1.0, 1e-5, 1.0)

    def test_smaller_delta_more_noise(self):
        assert gaussian_sigma(1.0, 1e-8, 1.0) > gaussian_sigma(1.0, 1e-3, 1.0)

    def test_scales_linearly_with_sensitivity(self):
        s1 = gaussian_sigma(0.5, 1e-5, 1.0)
        s2 = gaussian_sigma(0.5, 1e-5, 2.0)
        np.testing.assert_allclose(s2, 2 * s1)

    def test_inverse_relationship(self):
        sigma = gaussian_sigma(0.7, 1e-5, 0.3)
        eps = epsilon_for_sigma(sigma, 1e-5, 0.3)
        np.testing.assert_allclose(eps, 0.7)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            gaussian_sigma(0.0, 1e-5, 1.0)
        with pytest.raises(ValueError):
            gaussian_sigma(1.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            gaussian_sigma(1.0, 1.5, 1.0)
        with pytest.raises(ValueError):
            gaussian_sigma(1.0, 1e-5, -1.0)
        with pytest.raises(ValueError):
            epsilon_for_sigma(0.0, 1e-5, 1.0)


class TestTheorem1Bound:
    def test_positive(self):
        bound = pdsl_sigma_lower_bound(
            epsilon=0.3, delta=1e-5, clip_threshold=1.0,
            neighbor_weights=[0.25, 0.25, 0.25, 0.25], omega_min=0.25, phi_min=0.25,
        )
        assert bound > 0

    def test_decreasing_in_epsilon(self):
        kwargs = dict(delta=1e-5, clip_threshold=1.0, neighbor_weights=[0.5, 0.5], omega_min=0.5, phi_min=0.5)
        assert pdsl_sigma_lower_bound(epsilon=0.1, **kwargs) > pdsl_sigma_lower_bound(epsilon=1.0, **kwargs)

    def test_increasing_in_clip_threshold(self):
        kwargs = dict(epsilon=0.3, delta=1e-5, neighbor_weights=[0.5, 0.5], omega_min=0.5, phi_min=0.5)
        assert pdsl_sigma_lower_bound(clip_threshold=2.0, **kwargs) > pdsl_sigma_lower_bound(clip_threshold=1.0, **kwargs)

    def test_decreasing_in_phi_min(self):
        kwargs = dict(epsilon=0.3, delta=1e-5, clip_threshold=1.0, neighbor_weights=[0.5, 0.5], omega_min=0.5)
        assert pdsl_sigma_lower_bound(phi_min=0.1, **kwargs) > pdsl_sigma_lower_bound(phi_min=1.0, **kwargs)

    def test_matches_manual_formula(self):
        weights = [0.2, 0.3, 0.5]
        eps, delta, clip, omega_min, phi_min = 0.5, 1e-5, 1.0, 0.2, 0.4
        expected = (
            2 * clip * (1 / omega_min + sum(1 / w for w in weights)) * math.sqrt(2 * math.log(1.25 / delta))
        ) / (phi_min * eps * math.sqrt(sum(w ** -2 for w in weights)))
        got = pdsl_sigma_lower_bound(eps, delta, clip, weights, omega_min, phi_min)
        np.testing.assert_allclose(got, expected)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pdsl_sigma_lower_bound(0.3, 1e-5, 1.0, [], 0.5, 0.5)
        with pytest.raises(ValueError):
            pdsl_sigma_lower_bound(0.3, 1e-5, 1.0, [0.5, -0.1], 0.5, 0.5)
        with pytest.raises(ValueError):
            pdsl_sigma_lower_bound(0.3, 1e-5, 1.0, [0.5], 0.0, 0.5)
        with pytest.raises(ValueError):
            pdsl_sigma_lower_bound(0.3, 1e-5, 1.0, [0.5], 0.5, 0.0)
        with pytest.raises(ValueError):
            pdsl_sigma_lower_bound(0.3, 1e-5, -1.0, [0.5], 0.5, 0.5)


class TestTheorem1ForTopology:
    def test_positive_for_standard_topologies(self):
        for topo in (fully_connected_graph(6), ring_graph(6)):
            bound = pdsl_sigma_for_topology(topo, epsilon=0.3, delta=1e-5, clip_threshold=1.0)
            assert bound > 0

    def test_default_phi_min_uses_largest_neighborhood(self):
        topo = fully_connected_graph(5)
        default = pdsl_sigma_for_topology(topo, 0.3, 1e-5, 1.0)
        explicit = pdsl_sigma_for_topology(topo, 0.3, 1e-5, 1.0, phi_min=1.0 / 5.0)
        np.testing.assert_allclose(default, explicit)

    def test_is_max_over_agents(self):
        from repro.analysis.privacy_bounds import theorem1_sigma_bound

        topo = ring_graph(7)
        per_agent = theorem1_sigma_bound(topo, 0.3, 1e-5, 1.0, per_agent=True)
        overall = pdsl_sigma_for_topology(topo, 0.3, 1e-5, 1.0)
        np.testing.assert_allclose(overall, max(per_agent.values()))
