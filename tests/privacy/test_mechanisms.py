"""Tests for clipping and the Gaussian mechanism."""

import numpy as np
import pytest

from repro.privacy.mechanisms import (
    GaussianMechanism,
    clip_by_l2_norm,
    clip_rows_by_l2_norm,
    clipped_sensitivity,
)


class TestClipping:
    def test_short_vector_unchanged(self):
        v = np.array([0.3, 0.4])  # norm 0.5
        np.testing.assert_array_equal(clip_by_l2_norm(v, 1.0), v)

    def test_long_vector_scaled_to_threshold(self):
        v = np.array([3.0, 4.0])  # norm 5
        clipped = clip_by_l2_norm(v, 1.0)
        np.testing.assert_allclose(np.linalg.norm(clipped), 1.0)
        # direction preserved
        np.testing.assert_allclose(clipped / np.linalg.norm(clipped), v / np.linalg.norm(v))

    def test_norm_never_exceeds_threshold(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            v = rng.normal(size=50) * rng.uniform(0.1, 100)
            assert np.linalg.norm(clip_by_l2_norm(v, 2.5)) <= 2.5 + 1e-12

    def test_boundary_vector_unchanged(self):
        v = np.array([1.0, 0.0])
        np.testing.assert_array_equal(clip_by_l2_norm(v, 1.0), v)

    def test_zero_vector(self):
        v = np.zeros(5)
        np.testing.assert_array_equal(clip_by_l2_norm(v, 1.0), v)

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            clip_by_l2_norm(np.ones(3), 0.0)

    def test_sensitivity_is_twice_threshold(self):
        assert clipped_sensitivity(1.5) == 3.0
        with pytest.raises(ValueError):
            clipped_sensitivity(-1.0)


class TestGaussianMechanism:
    def test_zero_sigma_is_identity(self):
        mech = GaussianMechanism(0.0, np.random.default_rng(0), clip_threshold=1.0)
        v = np.array([0.1, -0.2, 0.3])
        np.testing.assert_array_equal(mech.privatize(v), v)

    def test_noise_statistics(self):
        mech = GaussianMechanism(2.0, np.random.default_rng(0))
        v = np.zeros(20000)
        noised = mech.add_noise(v)
        assert abs(noised.mean()) < 0.05
        assert abs(noised.std() - 2.0) < 0.05

    def test_privatize_clips_then_noises(self):
        mech = GaussianMechanism(0.0, np.random.default_rng(0), clip_threshold=1.0)
        v = np.array([30.0, 40.0])
        out = mech.privatize(v)
        np.testing.assert_allclose(np.linalg.norm(out), 1.0)

    def test_clip_identity_without_threshold(self):
        mech = GaussianMechanism(1.0, np.random.default_rng(0))
        v = np.array([30.0, 40.0])
        np.testing.assert_array_equal(mech.clip(v), v)

    def test_deterministic_given_seed(self):
        m1 = GaussianMechanism(1.0, np.random.default_rng(3), clip_threshold=1.0)
        m2 = GaussianMechanism(1.0, np.random.default_rng(3), clip_threshold=1.0)
        v = np.ones(10)
        np.testing.assert_array_equal(m1.privatize(v), m2.privatize(v))

    def test_different_calls_different_noise(self):
        mech = GaussianMechanism(1.0, np.random.default_rng(0))
        v = np.ones(10)
        assert not np.allclose(mech.add_noise(v), mech.add_noise(v))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GaussianMechanism(-1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            GaussianMechanism(1.0, np.random.default_rng(0), clip_threshold=0.0)

    def test_output_shape_preserved(self):
        mech = GaussianMechanism(0.5, np.random.default_rng(0), clip_threshold=1.0)
        v = np.random.default_rng(1).normal(size=(37,))
        assert mech.privatize(v).shape == v.shape


class TestRowWiseClipping:
    def test_matches_per_vector_clipping(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(size=(12, 30)) * rng.uniform(0.1, 50, size=(12, 1))
        rows = clip_rows_by_l2_norm(matrix, 2.0)
        for k in range(matrix.shape[0]):
            np.testing.assert_allclose(
                rows[k], clip_by_l2_norm(matrix[k], 2.0), rtol=1e-12, atol=1e-15
            )

    def test_returns_new_array(self):
        matrix = np.ones((3, 4))
        rows = clip_rows_by_l2_norm(matrix, 100.0)
        rows[0, 0] = -1.0
        assert matrix[0, 0] == 1.0

    def test_rejects_non_2d_input(self):
        with pytest.raises(ValueError):
            clip_rows_by_l2_norm(np.ones(5), 1.0)

    def test_rejects_invalid_threshold(self):
        with pytest.raises(ValueError):
            clip_rows_by_l2_norm(np.ones((2, 3)), 0.0)
