"""Property-based tests for the attack analysis kernels.

Two vectorizations this PR relies on are pinned here against their
straight-line references, bitwise:

* the blocked pairwise-distance matrix + greedy matching behind
  :func:`reconstruction_error` vs the original O(n*m) per-pair loop;
* the stacked per-example loss scorer vs row-at-a-time shared-helper calls.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.attacks.gradient_inversion import (
    pairwise_reconstruction_distances,
    reconstruction_error,
)
from repro.nn.batched import StackedSequential
from repro.nn.losses import (
    log_softmax,
    per_example_cross_entropy,
    softmax_cross_entropy,
)
from repro.nn.zoo import make_mlp


def _reference_reconstruction_error(original, reconstructed):
    """The pre-vectorization implementation: per-pair means, greedy matching."""
    original = np.asarray(original, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    available = list(range(reconstructed.shape[0]))
    errors = []
    for row in original:
        distances = [
            float(np.mean((row - reconstructed[j].reshape(row.shape)) ** 2))
            for j in available
        ]
        best = int(np.argmin(distances))
        errors.append(distances[best])
        available.pop(best)
        if not available:
            break
    return float(np.mean(errors))


@settings(max_examples=50, deadline=None)
@given(
    n=st.integers(1, 8),
    m=st.integers(1, 8),
    dim=st.integers(1, 10),
    seed=st.integers(0, 1000),
    scale=st.floats(0.1, 10.0, allow_nan=False),
)
def test_reconstruction_error_matches_pairwise_reference(n, m, dim, seed, scale):
    rng = np.random.default_rng(seed)
    original = rng.normal(scale=scale, size=(n, dim))
    reconstructed = rng.normal(scale=scale, size=(m, dim))
    assert reconstruction_error(original, reconstructed) == _reference_reconstruction_error(
        original, reconstructed
    )


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 6),
    m=st.integers(1, 6),
    dim=st.integers(1, 8),
    seed=st.integers(0, 1000),
)
def test_pairwise_distances_blocking_is_bit_exact(n, m, dim, seed):
    """Row-blocked evaluation must equal the one-shot matrix bit for bit."""
    rng = np.random.default_rng(seed)
    original = rng.normal(size=(n, dim))
    reconstructed = rng.normal(size=(m, dim))
    one_shot = pairwise_reconstruction_distances(original, reconstructed)
    tiny_blocks = pairwise_reconstruction_distances(
        original, reconstructed, max_block_elements=1
    )
    assert one_shot.shape == (n, m)
    np.testing.assert_array_equal(one_shot, tiny_blocks)


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 5),
    batch=st.integers(1, 8),
    features=st.integers(2, 8),
    classes=st.integers(2, 5),
    seed=st.integers(0, 1000),
)
def test_stacked_per_example_losses_match_row_calls(rows, batch, features, classes, seed):
    model = make_mlp(features, classes, hidden_sizes=(6,), seed=seed)
    engine = StackedSequential(model)
    rng = np.random.default_rng(seed)
    params = rng.normal(size=(rows, model.num_params))
    inputs = rng.normal(size=(rows, batch, features))
    labels = rng.integers(0, classes, size=(rows, batch))
    stacked = engine.per_example_losses(params, inputs, labels)
    assert stacked.shape == (rows, batch)
    for k in range(rows):
        row = engine.per_example_losses(
            params[k : k + 1], inputs[k : k + 1], labels[k : k + 1]
        )[0]
        np.testing.assert_array_equal(stacked[k], row)


@settings(max_examples=40, deadline=None)
@given(
    batch=st.integers(1, 10),
    classes=st.integers(2, 8),
    seed=st.integers(0, 1000),
    logit_scale=st.floats(0.1, 50.0, allow_nan=False),
)
def test_shared_loss_helpers_agree_with_mean_loss(batch, classes, seed, logit_scale):
    """The shared helpers reproduce `softmax_cross_entropy` exactly."""
    rng = np.random.default_rng(seed)
    logits = rng.normal(scale=logit_scale, size=(batch, classes))
    labels = rng.integers(0, classes, size=batch)
    per_example = per_example_cross_entropy(logits, labels)
    assert per_example.shape == (batch,)
    assert (per_example >= 0.0).all() and np.isfinite(per_example).all()
    mean_loss, _ = softmax_cross_entropy(logits, labels)
    assert float(per_example.mean()) == mean_loss
    log_probs = log_softmax(logits)
    np.testing.assert_array_equal(
        per_example, -log_probs[np.arange(batch), labels]
    )
