"""Property-based tests for the gossip compression stack (hypothesis).

The codec invariants the communication layer leans on:

* decode(encode(x)) error is bounded (per codec, with an explicit bound);
* error feedback telescopes: everything ever transmitted plus the current
  residual equals everything ever offered — zero systematic drift;
* top-k keeps exactly the k largest magnitudes and zeroes the rest;
* int8 round-trips exactly on values that are representable levels;
* random-k is k-sparse, deterministic per seed, and engine-order safe;
* the loop engine's single-row kernel is bit-identical to the vectorized
  engine's whole-fleet kernel.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression.codecs import (
    FP16Codec,
    Int8Codec,
    RandomKCodec,
    TopKCodec,
    make_codec,
)
from repro.compression.config import CompressionConfig, validate_compression
from repro.compression.state import CompressionState


def _matrix(rows, dimension, seed, scale=1.0):
    return np.random.default_rng(seed).normal(scale=scale, size=(rows, dimension))


def _rngs(rows, seed):
    return [np.random.default_rng([seed, 0xC0DEC, row]) for row in range(rows)]


# ---------------------------------------------------------------------------
# Round-trip error bounds
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 8),
    dimension=st.integers(1, 48),
    seed=st.integers(0, 10_000),
    scale=st.floats(1e-3, 1e3, allow_nan=False),
)
def test_fp16_roundtrip_error_is_half_precision_bounded(rows, dimension, seed, scale):
    work = _matrix(rows, dimension, seed, scale)
    decoded = FP16Codec().decode_rows(work)
    # Round-to-nearest half precision: relative error 2^-11 per element in
    # the normal range, absolute error 2^-25 (half the subnormal spacing)
    # below the smallest normal 2^-14.
    bound = np.maximum(np.abs(work) * 2.0**-10, 2.0**-24)
    assert (np.abs(decoded - work) <= bound).all()


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 8),
    dimension=st.integers(1, 48),
    seed=st.integers(0, 10_000),
    scale=st.floats(1e-3, 1e3, allow_nan=False),
)
def test_int8_roundtrip_error_bounded_by_row_scale(rows, dimension, seed, scale):
    work = _matrix(rows, dimension, seed, scale)
    decoded = Int8Codec().decode_rows(work)
    # Rounding to the nearest of 255 levels: at most half a level per entry.
    level = np.max(np.abs(work), axis=1, keepdims=True) / 127.0
    assert (np.abs(decoded - work) <= 0.5 * level + 1e-12).all()


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 8),
    dimension=st.integers(1, 48),
    k=st.integers(1, 48),
    seed=st.integers(0, 10_000),
)
def test_sparsifiers_are_contractions(rows, dimension, k, seed):
    work = _matrix(rows, dimension, seed)
    for codec in (TopKCodec(k), RandomKCodec(k)):
        decoded = codec.decode_rows(work, _rngs(rows, seed))
        # Keeping a coordinate subset can only shrink the row norm, and the
        # kept coordinates are exact copies.
        assert (
            np.linalg.norm(decoded, axis=1) <= np.linalg.norm(work, axis=1) + 1e-12
        ).all()
        kept = decoded != 0.0
        np.testing.assert_array_equal(decoded[kept], work[kept])


# ---------------------------------------------------------------------------
# Error feedback telescopes to zero drift
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    codec_name=st.sampled_from(["fp16", "int8", "topk", "randomk"]),
    agents=st.integers(1, 6),
    dimension=st.integers(2, 32),
    rounds=st.integers(1, 10),
    seed=st.integers(0, 10_000),
)
def test_error_feedback_residuals_telescope(codec_name, agents, dimension, rounds, seed):
    codec = make_codec(CompressionConfig(codec=codec_name), dimension)
    state = CompressionState(codec, agents, dimension, error_feedback=True, seed=seed)
    rng = np.random.default_rng(seed)
    offered = np.zeros((agents, dimension))
    transmitted = np.zeros((agents, dimension))
    for _ in range(rounds):
        matrix = rng.normal(size=(agents, dimension))
        offered += matrix
        transmitted += state.compress_rows("model", matrix)
    residual = state.residual("model")
    # Sum of decoded transmissions + final residual == sum of inputs: the
    # compression error never accumulates into systematic drift.
    np.testing.assert_allclose(transmitted + residual, offered, rtol=1e-9, atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(
    agents=st.integers(1, 5),
    dimension=st.integers(4, 24),
    seed=st.integers(0, 10_000),
)
def test_without_error_feedback_no_residual_is_kept(agents, dimension, seed):
    codec = make_codec(CompressionConfig(codec="topk", k=2), dimension)
    state = CompressionState(codec, agents, dimension, error_feedback=False, seed=seed)
    matrix = _matrix(agents, dimension, seed)
    decoded = state.compress_rows("model", matrix)
    assert state.residual("model") is None
    np.testing.assert_array_equal(decoded, codec.decode_rows(matrix))


# ---------------------------------------------------------------------------
# Top-k keeps exactly the k largest magnitudes
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 8),
    dimension=st.integers(1, 48),
    k=st.integers(1, 48),
    seed=st.integers(0, 10_000),
)
def test_topk_preserves_the_k_largest_magnitudes(rows, dimension, k, seed):
    work = _matrix(rows, dimension, seed)
    decoded = TopKCodec(k).decode_rows(work)
    effective_k = min(k, dimension)
    for row in range(rows):
        kept = np.flatnonzero(decoded[row])
        # Gaussian draws are almost surely nonzero and tie-free.
        assert len(kept) == effective_k
        np.testing.assert_array_equal(decoded[row, kept], work[row, kept])
        dropped = np.setdiff1d(np.arange(dimension), kept)
        if len(dropped):
            assert np.abs(work[row, kept]).min() >= np.abs(work[row, dropped]).max()


# ---------------------------------------------------------------------------
# Int8 is exact on representable values
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(1, 6),
    dimension=st.integers(1, 32),
    seed=st.integers(0, 10_000),
    scale_exponent=st.integers(-20, 20),
)
def test_int8_roundtrips_exactly_on_representable_levels(
    rows, dimension, seed, scale_exponent
):
    # A power-of-two scale survives the codec's own scale reconstruction
    # (max|row| / 127) bit for bit; an arbitrary float scale need not —
    # fl(fl(127 * s) / 127) != s in general — so exactness is only promised
    # on levels of the *reconstructed* scale.
    scale = 2.0**scale_exponent
    rng = np.random.default_rng(seed)
    levels = rng.integers(-127, 128, size=(rows, dimension)).astype(np.float64)
    levels[:, 0] = 127.0  # pin the row maximum to a full-scale level
    work = levels * scale
    decoded = Int8Codec().decode_rows(work)
    np.testing.assert_array_equal(decoded, work)


def test_int8_zero_rows_stay_exactly_zero():
    work = np.zeros((3, 7))
    np.testing.assert_array_equal(Int8Codec().decode_rows(work), work)


# ---------------------------------------------------------------------------
# Random-k: sparsity, determinism, per-row streams
# ---------------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 6),
    dimension=st.integers(2, 32),
    k=st.integers(1, 32),
    seed=st.integers(0, 10_000),
)
def test_randomk_is_k_sparse_and_seed_deterministic(rows, dimension, k, seed):
    work = _matrix(rows, dimension, seed)
    codec = RandomKCodec(k)
    first = codec.decode_rows(work, _rngs(rows, seed))
    again = codec.decode_rows(work, _rngs(rows, seed))
    np.testing.assert_array_equal(first, again)
    effective_k = min(k, dimension)
    assert ((first != 0.0).sum(axis=1) <= effective_k).all()
    kept = first != 0.0
    np.testing.assert_array_equal(first[kept], work[kept])


def test_randomk_requires_one_rng_per_row():
    codec = RandomKCodec(2)
    work = np.ones((3, 8))
    with pytest.raises(ValueError, match="one rng per row"):
        codec.decode_rows(work)
    with pytest.raises(ValueError, match="one rng per row"):
        codec.decode_rows(work, _rngs(2, 0))


# ---------------------------------------------------------------------------
# Loop (single-row) and vectorized (fleet-matrix) kernels are bit-identical
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    codec_name=st.sampled_from(["identity", "fp16", "int8", "topk", "randomk"]),
    agents=st.integers(1, 6),
    dimension=st.integers(2, 24),
    rounds=st.integers(1, 4),
    seed=st.integers(0, 10_000),
)
def test_row_kernel_matches_matrix_kernel_bitwise(
    codec_name, agents, dimension, rounds, seed
):
    config = CompressionConfig(codec=codec_name)
    fleet = CompressionState(make_codec(config, dimension), agents, dimension, seed=seed)
    per_row = CompressionState(
        make_codec(config, dimension), agents, dimension, seed=seed
    )
    rng = np.random.default_rng(seed)
    for _ in range(rounds):
        matrix = rng.normal(size=(agents, dimension))
        vectorized = fleet.compress_rows("model", matrix)
        looped = np.stack(
            [per_row.compress_row("model", agent, matrix[agent]) for agent in range(agents)]
        )
        np.testing.assert_array_equal(vectorized, looped)
    if fleet.residual("model") is not None:
        np.testing.assert_array_equal(
            fleet.residual("model"), per_row.residual("model")
        )


@settings(max_examples=20, deadline=None)
@given(
    agents=st.integers(2, 6),
    dimension=st.integers(2, 24),
    seed=st.integers(0, 10_000),
)
def test_masked_rows_pass_through_untouched(agents, dimension, seed):
    config = CompressionConfig(codec="topk", k=1)
    state = CompressionState(make_codec(config, dimension), agents, dimension, seed=seed)
    matrix = _matrix(agents, dimension, seed)
    mask = np.zeros(agents, dtype=bool)
    mask[0] = True
    decoded = state.compress_rows("model", matrix, active_mask=mask)
    np.testing.assert_array_equal(decoded[1:], matrix[1:])
    assert (state.residual("model")[1:] == 0.0).all()


# ---------------------------------------------------------------------------
# Configuration validation
# ---------------------------------------------------------------------------
def test_compression_config_validation():
    assert CompressionConfig().is_identity
    assert validate_compression(None) is None
    validate_compression({"codec": "topk", "k": 3, "communication_interval": 2})
    with pytest.raises(ValueError, match="codec must be one of"):
        validate_compression({"codec": "gzip"})
    with pytest.raises(ValueError, match="unknown"):
        validate_compression({"codec": "topk", "sparsity": 3})
    with pytest.raises(ValueError, match="k"):
        CompressionConfig(codec="fp16", k=3)
    with pytest.raises(ValueError, match="k"):
        CompressionConfig(codec="topk", k=0)
    with pytest.raises(ValueError, match="communication_interval"):
        CompressionConfig(communication_interval=0)
    with pytest.raises(ValueError, match="peer_selection"):
        CompressionConfig(peer_selection="ring_allreduce")


def test_make_codec_rejects_oversized_k():
    with pytest.raises(ValueError, match="exceeds the model dimension"):
        make_codec(CompressionConfig(codec="topk", k=100), 10)
