"""Property-based tests for the discrete-event queue (hypothesis).

The invariants the event-driven time model stands on:

* total order: pops come out sorted by ``(time, priority, seq)``, so events
  with equal timestamps and priorities fire in FIFO (insertion) order —
  never heap-internal or hash order;
* determinism: replaying the same pushes yields the same pops, and a
  state_dict round-trip taken at any drain point changes nothing;
* no loss: every pushed event is either popped or explicitly cancelled —
  cancellation removes exactly its target and never reorders survivors;
* clock monotonicity: ``now`` never decreases across pops, and scheduling
  into the past is an error.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simulation.events import (
    PRIORITY_ARRIVAL,
    PRIORITY_BARRIER,
    PRIORITY_COMPUTE,
    EventQueue,
)

# One scheduled event: a coarse time grid (so ties actually happen), one of
# the three real priorities, and an agent id.
EVENT = st.tuples(
    st.integers(min_value=0, max_value=5).map(float),
    st.sampled_from([PRIORITY_ARRIVAL, PRIORITY_COMPUTE, PRIORITY_BARRIER]),
    st.integers(min_value=0, max_value=7),
)
EVENTS = st.lists(EVENT, min_size=0, max_size=40)


def drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


@given(events=EVENTS)
@settings(max_examples=200, deadline=None)
def test_pops_are_totally_ordered_and_fifo_among_ties(events):
    queue = EventQueue()
    for time, priority, agent in events:
        queue.push(time, "e", agent=agent, priority=priority)
    popped = drain(queue)
    keys = [(e.time, e.priority, e.seq) for e in popped]
    assert keys == sorted(keys)
    # FIFO among equal (time, priority): seq is the push counter, so within
    # any tie group the sequence numbers must appear in insertion order.
    assert len(popped) == len(events)


@given(events=EVENTS)
@settings(max_examples=200, deadline=None)
def test_seed_replay_determinism(events):
    def run():
        queue = EventQueue()
        for time, priority, agent in events:
            queue.push(time, "e", agent=agent, priority=priority)
        return [(e.time, e.priority, e.seq, e.kind, e.agent) for e in drain(queue)]

    assert run() == run()


@given(events=EVENTS, data=st.data())
@settings(max_examples=200, deadline=None)
def test_no_event_loss_under_cancellation(events, data):
    queue = EventQueue()
    seqs = [
        queue.push(time, "e", agent=agent, priority=priority)
        for time, priority, agent in events
    ]
    to_cancel = data.draw(st.sets(st.sampled_from(seqs))) if seqs else set()
    cancelled = {seq for seq in to_cancel if queue.cancel(seq)}
    assert cancelled == set(to_cancel)  # all were live, so all must succeed
    assert len(queue) == len(events) - len(cancelled)
    survivors = {e.seq for e in drain(queue)}
    # Every pushed event is accounted for: popped or explicitly cancelled.
    assert survivors | cancelled == set(seqs)
    assert survivors & cancelled == set()


@given(events=EVENTS)
@settings(max_examples=200, deadline=None)
def test_cancellation_never_reorders_survivors(events):
    queue_all = EventQueue()
    queue_some = EventQueue()
    for time, priority, agent in events:
        queue_all.push(time, "e", agent=agent, priority=priority)
        queue_some.push(time, "e", agent=agent, priority=priority)
    # Cancel every third event in one queue; the other keeps everything.
    cancelled = {seq for seq in range(0, len(events), 3) if queue_some.cancel(seq)}
    expected = [e.seq for e in drain(queue_all) if e.seq not in cancelled]
    actual = [e.seq for e in drain(queue_some)]
    assert actual == expected


@given(events=EVENTS)
@settings(max_examples=200, deadline=None)
def test_clock_is_monotone_and_rejects_the_past(events):
    queue = EventQueue()
    for time, priority, agent in events:
        queue.push(time, "e", agent=agent, priority=priority)
    last = queue.now
    assert last == 0.0
    while queue:
        event = queue.pop()
        assert event.time >= last
        assert queue.now == event.time
        last = event.time
    if last > 0:
        with pytest.raises(ValueError):
            queue.push(last - 0.5, "late")


@given(events=EVENTS, split=st.integers(min_value=0, max_value=40))
@settings(max_examples=200, deadline=None)
def test_state_dict_round_trip_mid_drain_is_invisible(events, split):
    reference = EventQueue()
    checkpointed = EventQueue()
    for time, priority, agent in events:
        reference.push(time, "e", agent=agent, priority=priority)
        checkpointed.push(time, "e", agent=agent, priority=priority)
    split = min(split, len(events))
    prefix_a = [checkpointed.pop() for _ in range(split) if checkpointed]
    prefix_b = [reference.pop() for _ in range(split) if reference]
    assert [(e.time, e.seq) for e in prefix_a] == [(e.time, e.seq) for e in prefix_b]
    restored = EventQueue()
    restored.load_state_dict(checkpointed.state_dict())
    assert restored.now == checkpointed.now
    assert len(restored) == len(checkpointed)
    tail_restored = [(e.time, e.priority, e.seq) for e in drain(restored)]
    tail_reference = [(e.time, e.priority, e.seq) for e in drain(reference)]
    assert tail_restored == tail_reference
    # New pushes after the round trip continue the original seq counter, so
    # resumed and uninterrupted runs stay aligned.
    assert restored.push(restored.now + 1.0, "next") == len(events)


def test_push_rejects_bad_inputs():
    queue = EventQueue()
    with pytest.raises(ValueError):
        queue.push(float("inf"), "e")
    with pytest.raises(ValueError):
        queue.push(float("nan"), "e")
    with pytest.raises(ValueError):
        queue.push(1.0, "")
    with pytest.raises(IndexError):
        queue.pop()


def test_cancel_of_fired_or_unknown_event_is_a_noop():
    queue = EventQueue()
    seq = queue.push(1.0, "e")
    assert queue.pop().seq == seq
    assert not queue.cancel(seq)  # already fired
    assert not queue.cancel(999)  # never existed
    again = queue.push(2.0, "e")
    assert queue.cancel(again)
    assert not queue.cancel(again)  # already cancelled
    assert len(queue) == 0 and not queue


def test_arrivals_outrank_compute_at_the_same_instant():
    queue = EventQueue()
    queue.push(3.0, "compute", priority=PRIORITY_COMPUTE)
    queue.push(3.0, "arrival", priority=PRIORITY_ARRIVAL)
    queue.push(3.0, "barrier", priority=PRIORITY_BARRIER)
    assert [queue.pop().kind for _ in range(3)] == ["arrival", "compute", "barrier"]
