"""Property-based tests for the neural-network substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.nn.losses import softmax_cross_entropy
from repro.nn.zoo import make_linear_classifier, make_mlp


@settings(max_examples=40, deadline=None)
@given(
    batch=st.integers(1, 16),
    features=st.integers(1, 20),
    classes=st.integers(2, 8),
    seed=st.integers(0, 1000),
)
def test_flat_params_roundtrip_is_identity(batch, features, classes, seed):
    model = make_mlp(features, classes, hidden_sizes=(5,), seed=seed)
    original = model.get_flat_params()
    model.set_flat_params(original)
    np.testing.assert_array_equal(model.get_flat_params(), original)


@settings(max_examples=40, deadline=None)
@given(
    features=st.integers(1, 20),
    classes=st.integers(2, 8),
    seed=st.integers(0, 1000),
    scale=st.floats(0.1, 10.0, allow_nan=False),
)
def test_set_arbitrary_vector_roundtrip(features, classes, seed, scale):
    model = make_linear_classifier(features, classes, seed=seed)
    rng = np.random.default_rng(seed)
    vector = rng.normal(scale=scale, size=model.num_params)
    model.set_flat_params(vector)
    np.testing.assert_allclose(model.get_flat_params(), vector)


@settings(max_examples=40, deadline=None)
@given(
    batch=st.integers(1, 12),
    classes=st.integers(2, 10),
    seed=st.integers(0, 1000),
    logit_scale=st.floats(0.1, 50.0, allow_nan=False),
)
def test_cross_entropy_always_non_negative_and_finite(batch, classes, seed, logit_scale):
    rng = np.random.default_rng(seed)
    logits = rng.normal(scale=logit_scale, size=(batch, classes))
    labels = rng.integers(0, classes, size=batch)
    loss, grad = softmax_cross_entropy(logits, labels)
    assert loss >= 0.0
    assert np.isfinite(loss)
    assert np.isfinite(grad).all()


@settings(max_examples=30, deadline=None)
@given(
    batch=st.integers(2, 10),
    features=st.integers(2, 12),
    classes=st.integers(2, 6),
    seed=st.integers(0, 1000),
)
def test_gradient_is_zero_only_at_interpolation(batch, features, classes, seed):
    """A gradient step along the negative gradient never increases the loss (for small steps)."""
    rng = np.random.default_rng(seed)
    model = make_linear_classifier(features, classes, seed=seed)
    x = rng.normal(size=(batch, features))
    y = rng.integers(0, classes, size=batch)
    params = model.get_flat_params()
    loss_before, grad = model.loss_and_gradient(x, y, params=params)
    step = 1e-3 / max(1.0, np.linalg.norm(grad))
    loss_after = model.evaluate_loss(x, y, params=params - step * grad)
    assert loss_after <= loss_before + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    batch=st.integers(1, 10),
    features=st.integers(2, 12),
    classes=st.integers(2, 6),
    seed=st.integers(0, 1000),
)
def test_accuracy_always_in_unit_interval(batch, features, classes, seed):
    rng = np.random.default_rng(seed)
    model = make_mlp(features, classes, hidden_sizes=(6,), seed=seed)
    x = rng.normal(size=(batch, features))
    y = rng.integers(0, classes, size=batch)
    acc = model.accuracy(x, y)
    assert 0.0 <= acc <= 1.0
