"""Property-based tests for the privacy substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.privacy.calibration import epsilon_for_sigma, gaussian_sigma
from repro.privacy.mechanisms import GaussianMechanism, clip_by_l2_norm


vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(1, 64),
    elements=st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
)


@settings(max_examples=80, deadline=None)
@given(vector=vectors, threshold=st.floats(0.01, 100.0, allow_nan=False))
def test_clipping_never_exceeds_threshold(vector, threshold):
    clipped = clip_by_l2_norm(vector, threshold)
    assert np.linalg.norm(clipped) <= threshold * (1 + 1e-9)


@settings(max_examples=80, deadline=None)
@given(vector=vectors, threshold=st.floats(0.01, 100.0, allow_nan=False))
def test_clipping_is_idempotent(vector, threshold):
    once = clip_by_l2_norm(vector, threshold)
    twice = clip_by_l2_norm(once, threshold)
    np.testing.assert_allclose(once, twice, atol=1e-12)


@settings(max_examples=80, deadline=None)
@given(vector=vectors, threshold=st.floats(0.01, 100.0, allow_nan=False))
def test_clipping_preserves_direction(vector, threshold):
    norm = np.linalg.norm(vector)
    clipped = clip_by_l2_norm(vector, threshold)
    if norm > 1e-9:
        cosine = np.dot(vector, clipped) / (norm * max(np.linalg.norm(clipped), 1e-300))
        assert cosine > 1 - 1e-9


@settings(max_examples=80, deadline=None)
@given(
    vector=vectors,
    threshold=st.floats(0.01, 10.0, allow_nan=False),
    scale=st.floats(1.0, 100.0, allow_nan=False),
)
def test_clipping_scale_invariance_for_large_vectors(vector, threshold, scale):
    # once a vector exceeds the threshold, scaling it further cannot change the clipped output
    big = vector * 1e3 + threshold * 10  # guarantee above threshold
    np.testing.assert_allclose(
        clip_by_l2_norm(big, threshold), clip_by_l2_norm(big * scale, threshold), atol=1e-9
    )


@settings(max_examples=60, deadline=None)
@given(
    epsilon=st.floats(0.01, 10.0, allow_nan=False),
    delta=st.floats(1e-8, 0.1, allow_nan=False),
    sensitivity=st.floats(0.001, 10.0, allow_nan=False),
)
def test_sigma_epsilon_round_trip(epsilon, delta, sensitivity):
    sigma = gaussian_sigma(epsilon, delta, sensitivity)
    recovered = epsilon_for_sigma(sigma, delta, sensitivity)
    np.testing.assert_allclose(recovered, epsilon, rtol=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    eps_small=st.floats(0.01, 1.0, allow_nan=False),
    factor=st.floats(1.01, 100.0, allow_nan=False),
    delta=st.floats(1e-8, 0.1, allow_nan=False),
)
def test_sigma_monotone_decreasing_in_epsilon(eps_small, factor, delta):
    assert gaussian_sigma(eps_small, delta, 1.0) > gaussian_sigma(eps_small * factor, delta, 1.0)


@settings(max_examples=40, deadline=None)
@given(
    vector=vectors,
    sigma=st.floats(0.0, 5.0, allow_nan=False),
    seed=st.integers(0, 2**31 - 1),
)
def test_mechanism_output_shape_and_determinism(vector, sigma, seed):
    m1 = GaussianMechanism(sigma, np.random.default_rng(seed), clip_threshold=1.0)
    m2 = GaussianMechanism(sigma, np.random.default_rng(seed), clip_threshold=1.0)
    out1 = m1.privatize(vector)
    out2 = m2.privatize(vector)
    assert out1.shape == vector.shape
    np.testing.assert_array_equal(out1, out2)
