"""Scaling-layer properties: blocked == one-shot bitwise, precision budgets.

Two guarantees anchor the million-agent scaling work:

* **bit-identity** — streaming a row-independent kernel over ``(block, d)``
  chunks must change *nothing*: ``mix_rows_blocked`` equals ``apply`` bit
  for bit (dense and CSR, any block size), the blocked codec path equals
  the one-shot path, and an engine configured with ``block_rows`` walks the
  exact trajectory of the unblocked engine;
* **accuracy budget** — float32 / mixed-precision state is lossy by
  construction, so the divergence from the float64 trajectory is *pinned*:
  every algorithm must stay inside an explicit per-round budget, turning
  "roughly right" into a regression test.
"""

import numpy as np
import pytest

from repro.core.config import AlgorithmConfig
from repro.data.partition import partition_iid
from repro.data.synthetic import make_classification_dataset
from repro.nn.zoo import make_linear_classifier
from repro.topology.graphs import ring_graph, torus_graph


NUM_AGENTS = 16
ROUNDS = 3
#: Pinned empirically (~7e-8 observed after 3 rounds on this workload,
#: i.e. float32 rounding of O(1) parameters); an order of magnitude of slack
#: keeps the test robust to BLAS/platform variation while still catching a
#: kernel that silently degrades precision.
FLOAT32_BUDGET = 1e-5

ALGORITHMS = ["DP-DPSGD", "D-PSGD", "DMSGD", "MUFFLIATO", "DP-CGA", "DP-NET-FLEET"]


def _build(name: str, **config_kwargs):
    from repro.experiments.harness import build_algorithm, build_experiment_components
    from repro.experiments.specs import fast_spec

    spec = fast_spec(
        num_agents=NUM_AGENTS, topology="ring", num_rounds=ROUNDS, algorithms=[name]
    )
    for key, value in config_kwargs.items():
        spec = spec.with_updates(**{key: value})
    return build_algorithm(name, build_experiment_components(spec))


class TestBlockedMixingBitIdentity:
    """``mix_rows_blocked`` must equal ``apply`` bit for bit."""

    @pytest.mark.parametrize("fmt", ["dense", "csr"])
    @pytest.mark.parametrize("block_rows", [1, 7, NUM_AGENTS, 3 * NUM_AGENTS])
    def test_ring(self, fmt, block_rows, rng):
        operator = ring_graph(NUM_AGENTS).mixing_operator(fmt)
        state = rng.normal(size=(NUM_AGENTS, 9))
        np.testing.assert_array_equal(
            operator.apply(state), operator.mix_rows_blocked(state, block_rows)
        )

    @pytest.mark.parametrize("fmt", ["dense", "csr"])
    def test_torus_every_block_size(self, fmt, rng):
        operator = torus_graph(5).mixing_operator(fmt)
        state = rng.normal(size=(25, 4))
        expected = operator.apply(state)
        for block_rows in range(1, 26):
            np.testing.assert_array_equal(
                expected, operator.mix_rows_blocked(state, block_rows)
            )

    def test_out_buffer(self, rng):
        operator = ring_graph(12).mixing_operator("csr")
        state = rng.normal(size=(12, 5))
        out = np.empty_like(state)
        result = operator.mix_rows_blocked(state, 5, out=out)
        assert result is out
        np.testing.assert_array_equal(out, operator.apply(state))

    def test_rejects_bad_block(self, rng):
        operator = ring_graph(8).mixing_operator("csr")
        with pytest.raises(ValueError):
            operator.mix_rows_blocked(rng.normal(size=(8, 3)), 0)


class TestMixedPrecisionKernel:
    """``apply_mixed``: float32 in/out, float64 accumulation, blocked."""

    @pytest.mark.parametrize("fmt", ["dense", "csr"])
    @pytest.mark.parametrize("block_rows", [None, 1, 7, NUM_AGENTS])
    def test_matches_float64_reference(self, fmt, block_rows, rng):
        operator = ring_graph(NUM_AGENTS).mixing_operator(fmt)
        state = rng.normal(size=(NUM_AGENTS, 9)).astype(np.float32)
        result = operator.apply_mixed(state, block_rows=block_rows)
        assert result.dtype == np.float32
        dense_w = (
            operator.matrix.toarray()
            if hasattr(operator.matrix, "toarray")
            else np.asarray(operator.matrix)
        )
        reference = (dense_w @ state.astype(np.float64)).astype(np.float32)
        np.testing.assert_allclose(result, reference, rtol=2e-6, atol=2e-7)

    def test_block_size_does_not_change_result(self, rng):
        operator = ring_graph(NUM_AGENTS).mixing_operator("csr")
        state = rng.normal(size=(NUM_AGENTS, 6)).astype(np.float32)
        reference = operator.apply_mixed(state, block_rows=None)
        for block_rows in (1, 3, 5, NUM_AGENTS):
            np.testing.assert_array_equal(
                reference, operator.apply_mixed(state, block_rows=block_rows)
            )

    def test_float32_fast_path_dtype(self, rng):
        operator = ring_graph(NUM_AGENTS).mixing_operator("csr")
        state = rng.normal(size=(NUM_AGENTS, 6)).astype(np.float32)
        assert operator.apply(state).dtype == np.float32


class TestBlockedCompressionBitIdentity:
    """The chunked codec path must equal the one-shot call per agent."""

    @staticmethod
    def _make_state(codec_kwargs):
        from repro.compression.codecs import make_codec
        from repro.compression.config import CompressionConfig
        from repro.compression.state import CompressionState

        config = CompressionConfig(**codec_kwargs)
        return CompressionState(make_codec(config, 10), NUM_AGENTS, 10, seed=5)

    @pytest.mark.parametrize("codec_kwargs", [{"codec": "topk", "k": 3}, {"codec": "int8"}])
    @pytest.mark.parametrize("block_rows", [1, 7, NUM_AGENTS])
    def test_full_fleet(self, codec_kwargs, block_rows, rng):
        matrix = rng.normal(size=(NUM_AGENTS, 10))
        one_shot = self._make_state(codec_kwargs)
        blocked = self._make_state(codec_kwargs)
        for _ in range(3):  # residuals accumulate across calls
            expected = one_shot.compress_rows("model", matrix)
            actual = blocked.compress_rows_blocked(
                "model", matrix, block_rows=block_rows
            )
            np.testing.assert_array_equal(expected, actual)
        for channel in ("model",):
            res_a, res_b = one_shot.residual(channel), blocked.residual(channel)
            np.testing.assert_array_equal(res_a, res_b)

    def test_partial_mask(self, rng):
        matrix = rng.normal(size=(NUM_AGENTS, 10))
        mask = np.zeros(NUM_AGENTS, dtype=bool)
        mask[::3] = True
        one_shot = self._make_state({"codec": "topk", "k": 3})
        blocked = self._make_state({"codec": "topk", "k": 3})
        np.testing.assert_array_equal(
            one_shot.compress_rows("model", matrix, mask),
            blocked.compress_rows_blocked("model", matrix, mask, block_rows=5),
        )


class TestEngineBlockedBitIdentity:
    """An engine with ``block_rows`` set walks the unblocked trajectory exactly."""

    @pytest.mark.parametrize("name", ALGORITHMS)
    def test_trajectories_identical(self, name):
        baseline = _build(name)
        blocked = _build(name, block_rows=5)
        for _ in range(ROUNDS):
            baseline.run_round()
            blocked.run_round()
        np.testing.assert_array_equal(baseline.state, blocked.state)
        np.testing.assert_array_equal(baseline.momentum_state, blocked.momentum_state)

    def test_compressed_trajectories_identical(self):
        from repro.experiments.harness import (
            build_algorithm,
            build_experiment_components,
        )
        from repro.experiments.specs import fast_spec

        base = fast_spec(
            num_agents=NUM_AGENTS,
            topology="ring",
            num_rounds=ROUNDS,
            algorithms=["DP-DPSGD"],
            compression={"codec": "topk", "k": 4},
        )
        baseline = build_algorithm("DP-DPSGD", build_experiment_components(base))
        blocked = build_algorithm(
            "DP-DPSGD",
            build_experiment_components(base.with_updates(block_rows=3)),
        )
        for _ in range(ROUNDS):
            baseline.run_round()
            blocked.run_round()
        np.testing.assert_array_equal(baseline.state, blocked.state)


class TestPrecisionAccuracyBudget:
    """float32 / mixed trajectories stay inside the pinned divergence budget."""

    @pytest.mark.parametrize("name", ALGORITHMS)
    @pytest.mark.parametrize("dtype", ["float32", "mixed"])
    def test_divergence_budget(self, name, dtype):
        reference = _build(name)
        low = _build(name, dtype=dtype)
        for _ in range(ROUNDS):
            reference.run_round()
            low.run_round()
        assert low.state.dtype == np.float32
        divergence = float(
            np.max(np.abs(low.state.astype(np.float64) - reference.state))
        )
        assert divergence < FLOAT32_BUDGET, (
            f"{name} ({dtype}) diverged {divergence:.3e} from the float64 "
            f"trajectory after {ROUNDS} rounds (budget {FLOAT32_BUDGET:.0e})"
        )

    def test_float64_is_default_and_exact(self):
        config = AlgorithmConfig(
            learning_rate=0.05, sigma=0.5, clip_threshold=1.0, batch_size=4, seed=0
        )
        assert config.dtype == "float64"
        data = make_classification_dataset(
            num_samples=128, num_features=6, num_classes=3, cluster_std=1.0, seed=0
        )
        shards = partition_iid(data, 8, np.random.default_rng(0)).shards
        from repro.baselines import DPDPSGD

        a = DPDPSGD(make_linear_classifier(6, 3, seed=0), ring_graph(8), shards, config)
        assert a.state.dtype == np.float64

    def test_rejects_unknown_dtype(self):
        with pytest.raises(ValueError):
            AlgorithmConfig(
                learning_rate=0.05,
                sigma=0.5,
                clip_threshold=1.0,
                batch_size=4,
                seed=0,
                dtype="float16",
            )
