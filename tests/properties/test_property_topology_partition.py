"""Property-based tests for mixing matrices, gossip averaging and partitioning."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.partition import partition_dirichlet, partition_iid
from repro.data.synthetic import make_classification_dataset
from repro.topology.graphs import (
    bipartite_graph,
    erdos_renyi_graph,
    fully_connected_graph,
    ring_graph,
)
from repro.topology.mixing import is_doubly_stochastic, is_symmetric, second_largest_eigenvalue


topology_strategy = st.one_of(
    st.integers(2, 12).map(fully_connected_graph),
    st.integers(3, 12).map(ring_graph),
    st.integers(2, 12).map(bipartite_graph),
    st.tuples(st.integers(4, 12), st.integers(0, 100)).map(
        lambda args: erdos_renyi_graph(args[0], 0.6, seed=args[1])
    ),
)


@settings(max_examples=40, deadline=None)
@given(topology=topology_strategy)
def test_mixing_matrix_always_satisfies_assumption3(topology):
    w = topology.mixing_matrix
    assert is_symmetric(w)
    assert is_doubly_stochastic(w)
    assert second_largest_eigenvalue(w) < 1.0 - 1e-12
    assert 0.0 <= topology.rho < 1.0


@settings(max_examples=40, deadline=None)
@given(topology=topology_strategy, seed=st.integers(0, 1000))
def test_gossip_preserves_average_and_contracts_disagreement(topology, seed):
    rng = np.random.default_rng(seed)
    m = topology.num_agents
    vectors = rng.normal(size=(m, 5))
    mixed = topology.mixing_matrix @ vectors
    # average preservation (double stochasticity)
    np.testing.assert_allclose(mixed.mean(axis=0), vectors.mean(axis=0), atol=1e-10)
    # non-expansiveness of disagreement
    before = np.sum((vectors - vectors.mean(axis=0)) ** 2)
    after = np.sum((mixed - mixed.mean(axis=0)) ** 2)
    assert after <= before + 1e-9


@settings(max_examples=30, deadline=None)
@given(
    num_agents=st.integers(2, 10),
    alpha=st.floats(0.05, 10.0, allow_nan=False),
    seed=st.integers(0, 1000),
)
def test_dirichlet_partition_is_exact_cover(num_agents, alpha, seed):
    data = make_classification_dataset(400, num_features=4, num_classes=5, seed=seed % 7)
    result = partition_dirichlet(
        data, num_agents, alpha=alpha, rng=np.random.default_rng(seed), min_samples_per_agent=1
    )
    all_indices = np.concatenate(result.indices)
    assert len(all_indices) == len(data)
    assert len(np.unique(all_indices)) == len(data)
    assert min(result.sizes()) >= 1


@settings(max_examples=30, deadline=None)
@given(num_agents=st.integers(2, 10), seed=st.integers(0, 1000))
def test_iid_partition_is_balanced_cover(num_agents, seed):
    data = make_classification_dataset(300, num_features=4, num_classes=5, seed=seed % 5)
    result = partition_iid(data, num_agents, np.random.default_rng(seed))
    sizes = result.sizes()
    assert sum(sizes) == len(data)
    assert max(sizes) - min(sizes) <= 1
