"""The event-driven time model is a strict generalization, not a fork.

The load-bearing anchor: with uniform unit traces and synchronous barriers
the :class:`~repro.simulation.events.engine.AsyncEngine` must reproduce the
existing vectorized engine **bit-identically** — every recorded loss,
accuracy and consensus value, the final fleet state, and the traffic
counters — for all six algorithms, on static and dynamic topologies.  The
timing machinery runs (simulated clock, latency accounting, utilization)
but consumes no algorithm randomness, so the trajectories cannot drift.

On top of that baseline: simulated wall-clock lands in the history,
heterogeneous traces stretch it by the slowest device, async mode trains on
per-agent clocks with gossip-on-arrival, and both modes checkpoint/resume
mid-queue bit-identically.
"""

import numpy as np
import pytest

from repro.simulation.events import (
    AsyncEngine,
    DeviceTrace,
    synthetic_traces,
    uniform_traces,
)
from repro.simulation.metrics import histories_equal
from repro.simulation.runner import EvaluationConfig, RunSession, run_decentralized
from repro.topology.graphs import ring_graph
from repro.topology.schedule import DynamicTopologySchedule
from tests.conftest import _small_fleet_algorithms

ROUNDS = 3

#: Traffic keys that must match bitwise between bare and engine-wrapped runs
#: (the latency counters legitimately differ: only the engine observes time).
TRAFFIC_KEYS = (
    "messages_sent",
    "messages_dropped",
    "messages_rejected",
    "floats_sent",
    "bytes_sent",
    "traffic_by_tag",
    "bytes_by_tag",
)


def dynamic_schedule():
    return DynamicTopologySchedule(
        ring_graph(6),
        rewire_every=2,
        churn_rate=0.25,
        rejoin_rate=0.5,
        straggler_fraction=0.2,
        edge_failure_rate=0.1,
        seed=3,
    )


def run_pair(make_small_fleet, name, topology_factory=None, rounds=ROUNDS):
    """One bare run and one engine-wrapped run of identically built fleets."""
    results = []
    for wrap in (False, True):
        topology = topology_factory() if topology_factory else None
        algorithm, test = make_small_fleet(name, topology=topology)
        if wrap:
            algorithm = AsyncEngine(algorithm, traces=uniform_traces(algorithm.num_agents))
        history = run_decentralized(
            algorithm,
            num_rounds=rounds,
            evaluation=EvaluationConfig(eval_every=1, test_data=test),
        )
        results.append((algorithm, history))
    return results


def assert_records_bit_identical(bare_history, engine_history):
    assert len(bare_history) == len(engine_history)
    for bare, wrapped in zip(bare_history.records, engine_history.records):
        assert bare.round == wrapped.round
        assert bare.average_train_loss == wrapped.average_train_loss
        assert bare.test_accuracy == wrapped.test_accuracy
        assert bare.consensus == wrapped.consensus
        assert bare.active_agents == wrapped.active_agents
        assert bare.topology_events == wrapped.topology_events
    assert bare_history.final_test_accuracy == engine_history.final_test_accuracy


@pytest.mark.parametrize("algorithm_name", sorted(_small_fleet_algorithms()))
class TestUniformTraceBitIdentity:
    """The acceptance anchor: uniform unit traces reproduce the bare engine."""

    def test_static_topology(self, make_small_fleet, algorithm_name):
        (bare, bare_history), (engine, engine_history) = run_pair(
            make_small_fleet, algorithm_name
        )
        assert_records_bit_identical(bare_history, engine_history)
        np.testing.assert_array_equal(bare.state, engine.state)
        np.testing.assert_array_equal(bare.momentum_state, engine.momentum_state)
        bare_traffic = bare.network.traffic_summary()
        engine_traffic = engine.network.traffic_summary()
        for key in TRAFFIC_KEYS:
            assert bare_traffic[key] == engine_traffic[key], key
        # Only the engine-wrapped run observes simulated time: unit traces
        # make every round exactly one simulated second at full utilization.
        assert [r.sim_seconds for r in bare_history.records] == [None] * ROUNDS
        assert [r.sim_seconds for r in engine_history.records] == [1.0] * ROUNDS
        assert [r.utilization for r in engine_history.records] == [1.0] * ROUNDS
        assert engine_history.total_sim_seconds() == float(ROUNDS)
        assert engine_history.metadata["time_model"] == {
            "async": False,
            "staleness_decay": 0.0,
            "traces": "uniform",
        }

    def test_dynamic_topology(self, make_small_fleet, algorithm_name):
        (bare, bare_history), (engine, engine_history) = run_pair(
            make_small_fleet, algorithm_name, topology_factory=dynamic_schedule
        )
        assert_records_bit_identical(bare_history, engine_history)
        np.testing.assert_array_equal(bare.state, engine.state)
        bare_traffic = bare.network.traffic_summary()
        engine_traffic = engine.network.traffic_summary()
        for key in TRAFFIC_KEYS:
            assert bare_traffic[key] == engine_traffic[key], key


class TestBarrierTiming:
    """Simulated timing under barrier mode, beyond the unit-trace baseline."""

    def test_round_duration_is_set_by_the_slowest_path(self, make_small_fleet):
        algorithm, _ = make_small_fleet("DMSGD")
        traces = [
            DeviceTrace(compute_seconds=1.0 + agent, latency_seconds=0.25)
            for agent in range(algorithm.num_agents)
        ]
        engine = AsyncEngine(algorithm, traces=traces)
        engine.run_round()
        # Slowest agent finishes at t=5; its broadcast lands 0.25s later.
        assert engine.simulated_time == pytest.approx(5.25)
        assert engine.mean_utilization() < 1.0
        assert engine.network.messages_arrived == engine.network.messages_sent
        assert engine.network.latency_seconds_total > 0

    def test_two_channel_algorithms_pay_full_wire_time(self, make_small_fleet):
        # PDSL and DP-NET-FLEET ship (momentum/tracking, model) pairs per
        # message; the simulated transfer must be sized at both channels,
        # not the single-channel payload.
        bandwidth = 1e4
        durations = {}
        for name in ("DMSGD", "PDSL"):
            algorithm, _ = make_small_fleet(name)
            engine = AsyncEngine(
                algorithm,
                traces=uniform_traces(
                    algorithm.num_agents, bandwidth_bytes_per_s=bandwidth
                ),
            )
            engine.run_round()
            _, wire_bytes = algorithm.gossip_wire_cost(algorithm.num_gossip_channels)
            assert engine.simulated_time == pytest.approx(1.0 + wire_bytes / bandwidth)
            durations[name] = engine.simulated_time
        # Same model dimension, so PDSL's two channels serialize exactly
        # twice DMSGD's single-channel payload.
        assert durations["PDSL"] - 1.0 == pytest.approx(
            2.0 * (durations["DMSGD"] - 1.0)
        )

    def test_latency_is_tagged_per_arrival(self, make_small_fleet):
        algorithm, _ = make_small_fleet("DP-DPSGD")
        engine = AsyncEngine(
            algorithm,
            traces=uniform_traces(algorithm.num_agents, latency_seconds=0.5),
        )
        engine.run_round()
        arrived = engine.network.messages_arrived
        assert arrived == engine.network.messages_sent
        assert engine.network.latency_seconds_total == pytest.approx(0.5 * arrived)
        assert engine.network.latency_by_tag["model"] == pytest.approx(0.5 * arrived)

    def test_barrier_checkpoint_resume_is_bit_identical(self, make_small_fleet, tmp_path):
        def build():
            algorithm, test = make_small_fleet("DMSGD")
            return (
                AsyncEngine(algorithm, traces=uniform_traces(algorithm.num_agents)),
                test,
            )

        straight, test = build()
        full = RunSession(
            straight, 6, evaluation=EvaluationConfig(eval_every=1, test_data=test)
        ).run()
        interrupted, test = build()
        session = RunSession(
            interrupted, 6, evaluation=EvaluationConfig(eval_every=1, test_data=test)
        )
        session.run(max_rounds=3)
        path = session.checkpoint(tmp_path / "barrier.ckpt")
        resumed_engine, test = build()
        resumed = RunSession.resume(
            resumed_engine,
            path,
            evaluation=EvaluationConfig(eval_every=1, test_data=test),
        ).run()
        assert histories_equal(full, resumed)
        np.testing.assert_array_equal(straight.state, resumed_engine.state)
        assert straight.simulated_time == resumed_engine.simulated_time


class TestAsyncMode:
    """Genuine event-driven execution: per-agent clocks, gossip on arrival."""

    def build(self, make_small_fleet, name="DMSGD", staleness_decay=0.0, seed=3):
        algorithm, test = make_small_fleet(name)
        engine = AsyncEngine(
            algorithm,
            traces=synthetic_traces(algorithm.num_agents, seed=seed),
            async_mode=True,
            staleness_decay=staleness_decay,
        )
        return engine, test

    def test_history_records_simulated_wall_clock(self, make_small_fleet):
        engine, test = self.build(make_small_fleet)
        history = run_decentralized(
            engine,
            num_rounds=4,
            evaluation=EvaluationConfig(eval_every=1, test_data=test),
        )
        sims = [r.sim_seconds for r in history.records]
        assert all(s is not None and s > 0 for s in sims)
        assert history.total_sim_seconds() == pytest.approx(engine.simulated_time)
        assert all(0 < r.utilization <= 1 for r in history.records)
        assert history.metadata["backend"] == "event-async"
        assert history.metadata["time_model"]["async"] is True
        assert history.metadata["time_model"]["traces"] == "heterogeneous"
        assert np.isfinite(history.losses).all()
        # Training actually converges under async gossip.
        assert history.losses[-1] < history.losses[0]

    def test_async_runs_are_deterministic(self, make_small_fleet):
        histories = []
        for _ in range(2):
            engine, test = self.build(make_small_fleet)
            histories.append(
                run_decentralized(
                    engine,
                    num_rounds=3,
                    evaluation=EvaluationConfig(eval_every=1, test_data=test),
                )
            )
        assert histories[0].losses == histories[1].losses
        assert histories[0].sim_seconds_per_record == histories[1].sim_seconds_per_record

    def test_staleness_decay_changes_mixing_but_not_timing(self, make_small_fleet):
        plain, _ = self.build(make_small_fleet)
        decayed, _ = self.build(make_small_fleet, staleness_decay=2.0)
        for _ in range(3):
            plain.run_round()
            decayed.run_round()
        assert plain.simulated_time == decayed.simulated_time
        assert not np.array_equal(plain.state, decayed.state)

    def test_async_checkpoint_resume_mid_queue_is_bit_identical(
        self, make_small_fleet, tmp_path
    ):
        straight, test = self.build(make_small_fleet)
        evaluation = EvaluationConfig(eval_every=1, test_data=test)
        full = RunSession(straight, 6, evaluation=evaluation).run()
        interrupted, test = self.build(make_small_fleet)
        session = RunSession(interrupted, 6, evaluation=evaluation)
        session.run(max_rounds=3)
        # Mid-run the queue holds in-flight arrivals and staggered compute
        # completions — the checkpoint must carry all of them.
        assert len(interrupted.queue) > 0
        path = session.checkpoint(tmp_path / "async.ckpt")
        resumed_engine, test = self.build(make_small_fleet)
        resumed = RunSession.resume(resumed_engine, path, evaluation=evaluation).run()
        assert histories_equal(full, resumed)
        np.testing.assert_array_equal(straight.state, resumed_engine.state)
        assert straight.simulated_time == resumed_engine.simulated_time
        assert straight.events_processed == resumed_engine.events_processed
        summary_a = straight.network.traffic_summary()
        summary_b = resumed_engine.network.traffic_summary()
        assert summary_a == summary_b

    def test_privacy_accounting_covers_the_fastest_agent(self, make_small_fleet):
        # Each completed local step is a separate privatized release.  With
        # a 2x-faster agent the accountant must compose over that agent's
        # step count — one event per round would understate its budget.
        algorithm, _ = make_small_fleet("DMSGD", sigma=None, epsilon=1.0, delta=1e-5)
        traces = [
            DeviceTrace(compute_seconds=0.5 if agent == 0 else 1.0)
            for agent in range(algorithm.num_agents)
        ]
        engine = AsyncEngine(algorithm, traces=traces, async_mode=True)
        rounds = 3
        for _ in range(rounds):
            engine.run_round()
        steps_done = engine.state_dict()["time_model"]["steps_done"]
        assert max(steps_done) > rounds  # the fast agent really ran ahead
        assert len(algorithm.accountant.events) == max(steps_done)

    def test_async_mode_rejects_incompatible_configurations(self, make_small_fleet):
        dynamic, _ = make_small_fleet("DMSGD", topology=dynamic_schedule())
        with pytest.raises(ValueError, match="static topology"):
            AsyncEngine(dynamic, async_mode=True)
        compressed, _ = make_small_fleet(
            "DMSGD", compression={"codec": "topk", "k": 4}
        )
        with pytest.raises(ValueError, match="identity codec"):
            AsyncEngine(compressed, async_mode=True)
        strided, _ = make_small_fleet(
            "DMSGD", compression={"codec": "identity", "communication_interval": 2}
        )
        with pytest.raises(ValueError, match="communication_interval"):
            AsyncEngine(strided, async_mode=True)


class TestEngineWrapperContract:
    """The wrapper must be drivable anywhere a bare algorithm is."""

    def test_attribute_proxying(self, make_small_fleet):
        algorithm, _ = make_small_fleet("PDSL")
        engine = AsyncEngine(algorithm)
        assert engine.name == algorithm.name
        assert engine.num_agents == algorithm.num_agents
        assert engine.backend == algorithm.backend
        assert engine.algorithm is algorithm

    def test_trace_count_must_match_fleet(self, make_small_fleet):
        algorithm, _ = make_small_fleet("DMSGD")
        with pytest.raises(ValueError, match="device traces"):
            AsyncEngine(algorithm, traces=uniform_traces(3))

    def test_load_state_dict_rejects_bare_checkpoints(self, make_small_fleet):
        algorithm, _ = make_small_fleet("DMSGD")
        bare_state = algorithm.state_dict()
        engine = AsyncEngine(algorithm)
        with pytest.raises(ValueError, match="time-model state"):
            engine.load_state_dict(bare_state)

    def test_load_state_dict_rejects_mode_mismatch(self, make_small_fleet):
        algorithm, _ = make_small_fleet("DMSGD")
        engine = AsyncEngine(algorithm)
        engine.run_round()
        state = engine.state_dict()
        other, _ = make_small_fleet("DMSGD")
        async_engine = AsyncEngine(other, async_mode=True)
        with pytest.raises(ValueError, match="barrier mode"):
            async_engine.load_state_dict(state)


class TestSpecIntegration:
    """``ExperimentSpec.time_model`` reaches the engine through the harness."""

    def test_harness_wraps_and_records_simulated_time(self):
        from repro.experiments.harness import (
            build_algorithm,
            build_experiment_components,
            run_single,
        )
        from repro.experiments.specs import fast_spec

        spec = fast_spec(num_agents=4, num_rounds=2, algorithms=["DMSGD"])
        spec = spec.with_updates(time_model={"traces": "uniform"})
        components = build_experiment_components(spec)
        algorithm = build_algorithm("DMSGD", components)
        assert isinstance(algorithm, AsyncEngine)
        history = run_single("DMSGD", components)
        assert [r.sim_seconds for r in history.records] == [1.0, 1.0]
        assert history.metadata["time_model"]["traces"] == "uniform"

    def test_time_model_empty_mapping_gets_default_engine(self):
        # A mapping — even an empty one — means "run on simulated time";
        # only None keeps the bare algorithm.
        from repro.experiments.harness import (
            build_algorithm,
            build_experiment_components,
        )
        from repro.experiments.specs import fast_spec

        spec = fast_spec(num_agents=4, num_rounds=2, algorithms=["DMSGD"])
        spec = spec.with_updates(time_model={})
        components = build_experiment_components(spec)
        algorithm = build_algorithm("DMSGD", components)
        assert isinstance(algorithm, AsyncEngine)
        assert algorithm.async_mode is False
        assert algorithm.traces == uniform_traces(algorithm.num_agents)

    def test_time_model_none_keeps_the_bare_algorithm(self):
        from repro.experiments.harness import (
            build_algorithm,
            build_experiment_components,
        )
        from repro.experiments.specs import fast_spec

        spec = fast_spec(num_agents=4, num_rounds=2, algorithms=["DMSGD"])
        components = build_experiment_components(spec)
        algorithm = build_algorithm("DMSGD", components)
        assert not isinstance(algorithm, AsyncEngine)
