"""Tests for metric containers and the consensus distance."""

import numpy as np
import pytest

from repro.simulation.metrics import RoundRecord, TrainingHistory, consensus_distance


class TestConsensusDistance:
    def test_identical_vectors_zero(self):
        vectors = [np.ones(5)] * 4
        assert consensus_distance(vectors) == 0.0

    def test_known_value(self):
        vectors = [np.array([0.0]), np.array([2.0])]
        # mean is 1.0; each squared distance is 1.0
        assert consensus_distance(vectors) == 1.0

    def test_empty_list(self):
        assert consensus_distance([]) == 0.0

    def test_scale_quadratically(self):
        vectors = [np.array([0.0, 0.0]), np.array([1.0, 1.0])]
        base = consensus_distance(vectors)
        scaled = consensus_distance([2 * v for v in vectors])
        np.testing.assert_allclose(scaled, 4 * base)


class TestTrainingHistory:
    def make_history(self):
        history = TrainingHistory(algorithm="X")
        for t, loss in enumerate([2.0, 1.5, 1.0, 0.8], start=1):
            history.append(RoundRecord(round=t, average_train_loss=loss, test_accuracy=0.1 * t))
        return history

    def test_basic_accessors(self):
        history = self.make_history()
        assert len(history) == 4
        assert history.rounds == [1, 2, 3, 4]
        assert history.losses == [2.0, 1.5, 1.0, 0.8]
        assert history.final_loss() == 0.8

    def test_best_accuracy_uses_records_and_final(self):
        history = self.make_history()
        assert history.best_accuracy() == pytest.approx(0.4)
        history.final_test_accuracy = 0.9
        assert history.best_accuracy() == 0.9

    def test_rounds_to_loss(self):
        history = self.make_history()
        assert history.rounds_to_loss(1.5) == 2
        assert history.rounds_to_loss(0.1) is None

    def test_loss_auc_monotone_in_losses(self):
        low = self.make_history()
        high = TrainingHistory(algorithm="Y")
        for t, loss in enumerate([3.0, 3.0, 3.0, 3.0], start=1):
            high.append(RoundRecord(round=t, average_train_loss=loss))
        assert low.loss_auc() < high.loss_auc()

    def test_final_loss_on_empty_history_raises(self):
        with pytest.raises(ValueError):
            TrainingHistory(algorithm="X").final_loss()

    def test_best_accuracy_none_when_never_evaluated(self):
        history = TrainingHistory(algorithm="X")
        history.append(RoundRecord(round=1, average_train_loss=1.0))
        assert history.best_accuracy() is None

    def test_to_dict_round_trip_fields(self):
        history = self.make_history()
        history.metadata["topology"] = "ring"
        payload = history.to_dict()
        assert payload["algorithm"] == "X"
        assert payload["rounds"] == [1, 2, 3, 4]
        assert payload["metadata"]["topology"] == "ring"
        assert len(payload["accuracies"]) == 4

    def test_empty_history_auc_zero(self):
        assert TrainingHistory(algorithm="X").loss_auc() == 0.0
