"""Tests for the message-passing network."""

import numpy as np
import pytest

from repro.simulation.network import Message, Network


class TestSendReceive:
    def test_point_to_point_delivery(self):
        net = Network(3)
        assert net.send(0, 1, "model", np.array([1.0, 2.0]))
        messages = net.receive(1, "model")
        assert len(messages) == 1
        assert messages[0].sender == 0
        np.testing.assert_array_equal(messages[0].payload, [1.0, 2.0])

    def test_receive_drains_mailbox(self):
        net = Network(2)
        net.send(0, 1, "x", 1)
        net.receive(1, "x")
        assert net.receive(1, "x") == []

    def test_receive_by_sender_keeps_latest(self):
        net = Network(2)
        net.send(0, 1, "x", "old")
        net.send(0, 1, "x", "new")
        payloads = net.receive_by_sender(1, "x")
        assert payloads == {0: "new"}

    def test_tags_are_independent(self):
        net = Network(2)
        net.send(0, 1, "a", 1)
        net.send(0, 1, "b", 2)
        assert net.receive_by_sender(1, "a") == {0: 1}
        assert net.receive_by_sender(1, "b") == {0: 2}

    def test_broadcast_excludes_sender(self):
        net = Network(4)
        delivered = net.broadcast(0, [0, 1, 2, 3], "m", 42)
        assert delivered == 3
        assert net.pending(0) == 0
        for agent in (1, 2, 3):
            assert net.receive_by_sender(agent, "m") == {0: 42}

    def test_pending_counts(self):
        net = Network(2)
        net.send(0, 1, "a", 1)
        net.send(0, 1, "a", 2)
        net.send(0, 1, "b", 3)
        assert net.pending(1, "a") == 2
        assert net.pending(1) == 3

    def test_clear(self):
        net = Network(2)
        net.send(0, 1, "a", 1)
        net.clear()
        assert net.pending(1) == 0

    def test_invalid_agent_ids(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.send(0, 5, "a", 1)
        with pytest.raises(ValueError):
            net.send(-1, 1, "a", 1)
        with pytest.raises(ValueError):
            net.receive(7, "a")

    def test_empty_tag_rejected(self):
        net = Network(2)
        with pytest.raises(ValueError):
            net.send(0, 1, "", 1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Network(0)
        with pytest.raises(ValueError):
            Network(2, drop_probability=1.5)
        with pytest.raises(ValueError):
            Network(2, drop_probability=0.5)  # rng required


class TestFaultInjection:
    def test_drops_happen_at_configured_rate(self):
        net = Network(2, drop_probability=0.5, rng=np.random.default_rng(0))
        delivered = sum(net.send(0, 1, "x", i) for i in range(2000))
        assert 800 < delivered < 1200
        assert net.messages_dropped == 2000 - delivered

    def test_no_drops_by_default(self):
        net = Network(2)
        for i in range(50):
            assert net.send(0, 1, "x", i)
        assert net.messages_dropped == 0

    def test_full_partition_drops_everything(self):
        # The closed upper bound models a fully partitioned link: every
        # message is accepted for sending but none is ever delivered.
        net = Network(2, drop_probability=1.0, rng=np.random.default_rng(0))
        for i in range(20):
            assert not net.send(0, 1, "x", i)
        assert net.messages_dropped == 20
        assert net.pending(1) == 0


class TestAgentRoster:
    def test_sends_to_departed_agents_are_rejected(self):
        net = Network(3)
        net.set_active_mask(np.array([True, False, True]))
        assert not net.send(0, 1, "x", 1)  # departed recipient
        assert not net.send(1, 0, "x", 1)  # departed sender
        assert net.send(0, 2, "x", 1)
        assert net.messages_rejected == 2
        assert net.messages_sent == 1
        assert net.traffic_summary()["messages_rejected"] == 2

    def test_departure_discards_pending_messages(self):
        net = Network(2)
        net.send(0, 1, "x", 1)
        net.set_active_mask(np.array([True, False]))
        net.set_active_mask(None)  # agent 1 returns...
        assert net.receive(1, "x") == []  # ...to an empty mailbox

    def test_none_restores_everyone(self):
        net = Network(2)
        net.set_active_mask(np.array([True, False]))
        assert not net.is_active(1)
        net.set_active_mask(None)
        assert net.is_active(1)
        assert net.send(0, 1, "x", 1)

    def test_mask_shape_validated(self):
        net = Network(3)
        with pytest.raises(ValueError):
            net.set_active_mask(np.array([True, False]))


class TestAccounting:
    def test_message_and_float_counters(self):
        net = Network(2)
        net.send(0, 1, "grad", np.zeros(10))
        net.send(1, 0, "grad", np.zeros(7))
        summary = net.traffic_summary()
        assert summary["messages_sent"] == 2
        assert summary["floats_sent"] == 17
        assert summary["traffic_by_tag"]["grad"] == 17

    def test_round_counter(self):
        net = Network(2)
        assert net.current_round == 0
        net.advance_round()
        net.advance_round()
        assert net.current_round == 2

    def test_message_records_round(self):
        net = Network(2)
        net.advance_round()
        net.send(0, 1, "x", 1)
        [message] = net.receive(1, "x")
        assert isinstance(message, Message)
        assert message.round == 1
