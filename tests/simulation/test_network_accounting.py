"""Network byte accounting: compressed payloads, drops, churn, checkpoints.

``Network`` has always counted messages and floats; with compressed gossip
it also accounts *wire bytes* — dense payloads at ``8 * floats``, wrapped
:class:`CompressedPayload` messages at the codec's encoded size.  These
tests pin every accounting rule: what counts (delivered and dropped sends,
``record_bulk``), what does not (rejected sends to departed agents), and
how the counters survive a checkpoint round trip — including checkpoints
written before byte accounting existed.
"""

import numpy as np
import pytest

from repro.compression.codecs import CompressedPayload
from repro.simulation.network import Network


def test_raw_array_payload_counts_dense_float64_bytes():
    net = Network(3)
    net.send(0, 1, "model", np.ones(10))
    assert net.floats_sent == 10
    assert net.bytes_sent == 80
    assert net.traffic_by_tag == {"model": 10}
    assert net.bytes_by_tag == {"model": 80}


def test_tuple_and_scalar_payload_sizes():
    net = Network(3)
    net.send(0, 1, "mix", (np.ones(5), np.ones(5)))  # np.asarray -> (2, 5)
    assert net.floats_sent == 10
    assert net.bytes_sent == 80
    net.send(0, 1, "flag", 3.14)  # opaque scalar counts as one value
    assert net.floats_sent == 11
    assert net.bytes_sent == 88


def test_compressed_payload_counts_encoded_size():
    net = Network(3)
    payload = CompressedPayload(
        values=np.zeros(36), num_values=3, wire_bytes=36, codec="topk"
    )
    assert net.send(0, 1, "model", payload)
    # Encoded size, not the dense 36 * 8 = 288 bytes of the decoded array.
    assert net.floats_sent == 3
    assert net.bytes_sent == 36
    assert net.bytes_by_tag == {"model": 36}
    # The receiver still gets the wrapper with the full decoded values.
    received = net.receive_by_sender(1, "model")
    assert received[0] is payload
    assert received[0].values.size == 36


def test_record_bulk_defaults_to_dense_bytes():
    net = Network(4)
    net.record_bulk("mix", num_messages=6, floats_per_message=10)
    assert net.messages_sent == 6
    assert net.floats_sent == 60
    assert net.bytes_sent == 480


def test_record_bulk_accepts_compressed_bytes():
    net = Network(4)
    net.record_bulk("mix", num_messages=6, floats_per_message=3, bytes_per_message=36)
    assert net.floats_sent == 18
    assert net.bytes_sent == 216
    assert net.bytes_by_tag == {"mix": 216}
    with pytest.raises(ValueError, match="non-negative"):
        net.record_bulk("mix", num_messages=1, floats_per_message=1, bytes_per_message=-1)


def test_dropped_messages_still_count_as_traffic():
    # Fault injection models loss on the wire: the sender transmitted, so
    # the bandwidth was spent even though nothing arrives.
    net = Network(2, drop_probability=1.0, rng=np.random.default_rng(0))
    assert not net.send(0, 1, "model", np.ones(4))
    assert net.messages_dropped == 1
    assert net.floats_sent == 4
    assert net.bytes_sent == 32
    assert net.pending(1) == 0


def test_rejected_sends_to_departed_agents_count_nothing():
    net = Network(3)
    mask = np.array([True, False, True])
    net.set_active_mask(mask)
    assert not net.send(0, 1, "model", np.ones(4))  # recipient departed
    assert not net.send(1, 2, "model", np.ones(4))  # sender departed
    assert net.messages_rejected == 2
    assert net.messages_sent == 0
    assert net.floats_sent == 0
    assert net.bytes_sent == 0
    assert net.traffic_by_tag == {}


def test_departure_discards_pending_mail():
    net = Network(3)
    net.send(0, 1, "model", np.ones(4))
    assert net.pending(1) == 1
    net.set_active_mask(np.array([True, False, True]))
    assert net.pending(1) == 0
    # Traffic already accounted stays accounted: the bytes were spent.
    assert net.bytes_sent == 32


def test_traffic_summary_includes_byte_counters():
    net = Network(3)
    net.send(0, 1, "model", np.ones(2))
    summary = net.traffic_summary()
    assert summary["bytes_sent"] == 16
    assert summary["bytes_by_tag"] == {"model": 16}


def test_state_dict_roundtrip_preserves_byte_counters():
    net = Network(3)
    net.send(0, 1, "model", np.ones(4))
    net.send(
        0,
        2,
        "mix",
        CompressedPayload(values=np.zeros(8), num_values=2, wire_bytes=24, codec="topk"),
    )
    net.receive(1, "model")
    net.receive(2, "mix")
    state = net.state_dict()

    restored = Network(3)
    restored.load_state_dict(state)
    assert restored.traffic_summary() == net.traffic_summary()


def test_load_state_dict_reconstructs_bytes_for_old_checkpoints():
    # Checkpoints from before byte accounting carry floats only; the
    # restored network back-fills the dense float64 equivalent.
    net = Network(2)
    net.send(0, 1, "model", np.ones(5))
    state = net.state_dict()
    del state["bytes_sent"]
    del state["bytes_by_tag"]

    restored = Network(2)
    restored.load_state_dict(state)
    assert restored.bytes_sent == 8 * restored.floats_sent == 40
    assert restored.bytes_by_tag == {"model": 40}


# ---------------------------------------------------------------------------
# Accounting under asynchrony: latency is tagged per message *arrival*
# ---------------------------------------------------------------------------


def test_send_with_latency_tags_the_arrival():
    net = Network(3)
    assert net.send(0, 1, "model", np.ones(4), latency=0.25)
    assert net.send(0, 2, "model", np.ones(4), latency=0.75)
    assert net.messages_arrived == 2
    assert net.latency_seconds_total == pytest.approx(1.0)
    assert net.latency_by_tag == {"model": pytest.approx(1.0)}
    # Byte accounting is unchanged by the latency annotation.
    assert net.bytes_sent == 64
    summary = net.traffic_summary()
    assert summary["messages_arrived"] == 2
    assert summary["latency_seconds_total"] == pytest.approx(1.0)


def test_send_without_latency_records_no_arrival_statistics():
    # Synchronous sends carry no simulated transit time: the latency
    # counters stay untouched, so real-time-only runs report zeros.
    net = Network(3)
    assert net.send(0, 1, "model", np.ones(4))
    assert net.messages_arrived == 0
    assert net.latency_seconds_total == 0.0
    assert net.latency_by_tag == {}


def test_rejected_sends_with_latency_count_nothing():
    # A message to (or from) a departed agent never arrives: no bytes, no
    # latency, only the rejection counter moves — even when the event
    # engine annotated the send with its simulated transit time.
    net = Network(3)
    net.set_active_mask(np.array([True, False, True]))
    assert not net.send(0, 1, "model", np.ones(4), latency=0.5)
    assert not net.send(1, 2, "model", np.ones(4), latency=0.5)
    assert net.messages_rejected == 2
    assert net.messages_arrived == 0
    assert net.latency_seconds_total == 0.0
    assert net.bytes_sent == 0


def test_dropped_sends_with_latency_count_bytes_but_no_arrival():
    # Loss on the wire: bandwidth was spent, but the payload never lands,
    # so the arrival/latency counters must not move.
    net = Network(2, drop_probability=1.0, rng=np.random.default_rng(0))
    assert not net.send(0, 1, "model", np.ones(4), latency=0.5)
    assert net.messages_dropped == 1
    assert net.bytes_sent == 32
    assert net.messages_arrived == 0
    assert net.latency_seconds_total == 0.0


def test_record_latency_accounts_without_enqueueing():
    net = Network(3)
    net.record_latency("model", 0.5)
    net.record_latency("model", 1.5)
    assert net.messages_arrived == 2
    assert net.latency_seconds_total == pytest.approx(2.0)
    assert net.pending(0) == net.pending(1) == net.pending(2) == 0
    with pytest.raises(ValueError, match="non-negative"):
        net.record_latency("model", -0.1)
    with pytest.raises(ValueError, match="non-empty"):
        net.record_latency("", 0.1)


def test_state_dict_roundtrip_preserves_latency_counters():
    net = Network(3)
    net.send(0, 1, "model", np.ones(4), latency=0.25)
    net.receive(1, "model")
    net.record_latency("grad", 1.0, messages=3)
    state = net.state_dict()

    restored = Network(3)
    restored.load_state_dict(state)
    assert restored.traffic_summary() == net.traffic_summary()
    assert restored.messages_arrived == 4
    assert restored.latency_by_tag == {"model": 0.25, "grad": 1.0}


def test_old_checkpoints_without_latency_counters_restore_to_zero():
    net = Network(2)
    net.send(0, 1, "model", np.ones(5), latency=0.5)
    net.receive(1, "model")
    state = net.state_dict()
    del state["messages_arrived"]
    del state["latency_seconds_total"]
    del state["latency_by_tag"]

    restored = Network(2)
    restored.load_state_dict(state)
    assert restored.messages_arrived == 0
    assert restored.latency_seconds_total == 0.0
    assert restored.latency_by_tag == {}
