"""Out-of-core checkpoints: memmap sidecars, atomic writes, resume identity."""

import numpy as np
import pytest

from repro.simulation.checkpoint import (
    MEMMAP_THRESHOLD_BYTES,
    load_checkpoint,
    load_memmap_array,
    save_checkpoint,
    save_memmap_array,
)


class TestMemmapArrayRoundtrip:
    def test_roundtrip(self, tmp_path, rng):
        array = rng.normal(size=(64, 9))
        path = tmp_path / "fleet.npy"
        save_memmap_array(path, array)
        loaded = load_memmap_array(path)
        assert isinstance(loaded, np.memmap)
        np.testing.assert_array_equal(np.asarray(loaded), array)

    def test_preserves_dtype(self, tmp_path, rng):
        array = rng.normal(size=(8, 4)).astype(np.float32)
        path = tmp_path / "fleet32.npy"
        save_memmap_array(path, array)
        assert load_memmap_array(path).dtype == np.float32

    def test_no_temp_litter(self, tmp_path, rng):
        save_memmap_array(tmp_path / "a.npy", rng.normal(size=(4, 4)))
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "a.npy"]
        assert leftovers == []


class TestOutOfCoreCheckpoint:
    def _payload(self, rng):
        big_rows = MEMMAP_THRESHOLD_BYTES // (8 * 16) + 1
        return {
            "round": 3,
            "state": rng.normal(size=(big_rows, 16)),  # above threshold
            "nested": {"momentum": rng.normal(size=(big_rows, 16))},
            "small": rng.normal(size=(4,)),  # below threshold: stays inline
        }

    def test_sidecars_created_for_large_arrays(self, tmp_path, rng):
        payload = self._payload(rng)
        path = tmp_path / "round_000003.ckpt"
        save_checkpoint(path, payload, out_of_core=True)
        sidecars = sorted(p.name for p in tmp_path.glob("round_000003.ckpt.arr*.npy"))
        assert len(sidecars) == 2  # state + nested momentum; small stays inline

    def test_load_reattaches_memmaps(self, tmp_path, rng):
        payload = self._payload(rng)
        path = tmp_path / "round_000003.ckpt"
        save_checkpoint(path, payload, out_of_core=True)
        loaded = load_checkpoint(path)
        assert loaded["round"] == 3
        assert isinstance(loaded["state"], np.memmap)
        assert isinstance(loaded["nested"]["momentum"], np.memmap)
        assert not isinstance(loaded["small"], np.memmap)
        np.testing.assert_array_equal(np.asarray(loaded["state"]), payload["state"])
        np.testing.assert_array_equal(
            np.asarray(loaded["nested"]["momentum"]), payload["nested"]["momentum"]
        )
        np.testing.assert_array_equal(loaded["small"], payload["small"])

    def test_inline_checkpoint_unchanged(self, tmp_path, rng):
        payload = self._payload(rng)
        path = tmp_path / "inline.ckpt"
        save_checkpoint(path, payload)
        assert list(tmp_path.glob("inline.ckpt.arr*.npy")) == []
        loaded = load_checkpoint(path)
        assert not isinstance(loaded["state"], np.memmap)
        np.testing.assert_array_equal(loaded["state"], payload["state"])

    def test_missing_sidecar_raises(self, tmp_path, rng):
        payload = self._payload(rng)
        path = tmp_path / "round_000003.ckpt"
        save_checkpoint(path, payload, out_of_core=True)
        for sidecar in tmp_path.glob("round_000003.ckpt.arr*.npy"):
            sidecar.unlink()
        with pytest.raises((ValueError, FileNotFoundError)):
            load_checkpoint(path)


class TestRunSessionOutOfCore:
    def test_resume_bit_identical(self, tmp_path, monkeypatch):
        from repro.experiments.harness import build_algorithm, build_experiment_components
        from repro.experiments.specs import fast_spec
        from repro.simulation.runner import RunSession
        import repro.simulation.checkpoint as checkpoint_module

        # The test fleet is tiny; force every array out-of-core so the
        # sidecar round trip is exercised end to end.
        monkeypatch.setattr(checkpoint_module, "MEMMAP_THRESHOLD_BYTES", 0)

        spec = fast_spec(num_agents=8, topology="ring", num_rounds=6)

        def fresh():
            return build_algorithm("DP-DPSGD", build_experiment_components(spec))

        straight = RunSession(fresh(), num_rounds=6)
        straight.run()

        run_dir = tmp_path / "run"
        session = RunSession(
            fresh(),
            num_rounds=6,
            checkpoint_every=2,
            checkpoint_dir=run_dir,
            out_of_core=True,
        )
        session.run(4)
        checkpoints = sorted(run_dir.glob("round_*.ckpt"))
        assert checkpoints, "expected at least one checkpoint"
        sidecars = list(run_dir.glob("round_*.ckpt.arr*.npy"))
        assert sidecars, "out_of_core run must externalize fleet arrays"

        resumed = RunSession.resume(fresh(), checkpoints[-1], out_of_core=True)
        resumed.run()
        np.testing.assert_array_equal(
            resumed.algorithm.state, straight.algorithm.state
        )
        resumed_history = resumed.history.to_dict()
        straight_history = straight.history.to_dict()
        # Only per-round wall-clock timings may differ between the two runs.
        for history in (resumed_history, straight_history):
            history.get("metrics", history).pop("wall_clock_seconds", None)
            history.pop("wall_clock_seconds", None)
        assert resumed_history == straight_history
