"""Tests for the decentralized round-loop runner."""

import numpy as np
import pytest

from repro.core.config import AlgorithmConfig
from repro.baselines.dp_dpsgd import DPDPSGD
from repro.data.partition import partition_iid
from repro.simulation.runner import EvaluationConfig, run_decentralized


def make_algorithm(tiny_dataset, tiny_model, topology, sigma=0.0):
    shards = partition_iid(tiny_dataset, topology.num_agents, np.random.default_rng(0)).shards
    config = AlgorithmConfig(learning_rate=0.1, sigma=sigma, batch_size=16, seed=0)
    return DPDPSGD(tiny_model, topology, shards, config)


class TestRunnerBasics:
    def test_records_every_round_by_default(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(algorithm, 5)
        assert len(history) == 5
        assert history.rounds == [1, 2, 3, 4, 5]

    def test_eval_every_subsamples_rounds(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(algorithm, 6, EvaluationConfig(eval_every=3))
        # rounds 1 (always), 3, 6
        assert history.rounds == [1, 3, 6]

    def test_test_accuracy_recorded_when_test_data_given(
        self, tiny_dataset, tiny_model, full_topology_4
    ):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(
            algorithm, 3, EvaluationConfig(test_data=tiny_dataset)
        )
        assert history.final_test_accuracy is not None
        assert all(r.test_accuracy is not None for r in history.records)

    def test_no_accuracy_without_test_data(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(algorithm, 2)
        assert history.final_test_accuracy is None
        assert all(r.test_accuracy is None for r in history.records)

    def test_metadata_captured(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(algorithm, 2)
        assert history.metadata["num_agents"] == 4
        assert history.metadata["topology"] == "fully_connected"
        assert history.metadata["rounds"] == 2

    def test_progress_callback_invoked(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        calls = []
        run_decentralized(algorithm, 3, progress_callback=lambda r, rec: calls.append(r))
        assert calls == [1, 2, 3]

    def test_consensus_tracked_by_default(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(algorithm, 2)
        assert all(r.consensus is not None for r in history.records)

    def test_invalid_rounds(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        with pytest.raises(ValueError):
            run_decentralized(algorithm, 0)


class TestEvaluationConfigValidation:
    def test_invalid_eval_every(self):
        with pytest.raises(ValueError):
            EvaluationConfig(eval_every=0)

    def test_invalid_loss_samples(self):
        with pytest.raises(ValueError):
            EvaluationConfig(loss_samples_per_agent=0)

    def test_invalid_accuracy_mode(self):
        with pytest.raises(ValueError):
            EvaluationConfig(accuracy_mode="median")


class TestLearningProgress:
    def test_non_private_training_reduces_loss(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4, sigma=0.0)
        history = run_decentralized(algorithm, 25)
        assert history.losses[-1] < history.losses[0]
