"""Tests for the decentralized round-loop runner."""

import numpy as np
import pytest

from repro.core.config import AlgorithmConfig
from repro.baselines.dp_dpsgd import DPDPSGD
from repro.data.partition import partition_iid
from repro.simulation.runner import EvaluationConfig, run_decentralized


def make_algorithm(tiny_dataset, tiny_model, topology, sigma=0.0):
    shards = partition_iid(tiny_dataset, topology.num_agents, np.random.default_rng(0)).shards
    config = AlgorithmConfig(learning_rate=0.1, sigma=sigma, batch_size=16, seed=0)
    return DPDPSGD(tiny_model, topology, shards, config)


class TestRunnerBasics:
    def test_records_every_round_by_default(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(algorithm, 5)
        assert len(history) == 5
        assert history.rounds == [1, 2, 3, 4, 5]

    def test_eval_every_subsamples_rounds(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(algorithm, 6, EvaluationConfig(eval_every=3))
        # rounds 1 (always), 3, 6
        assert history.rounds == [1, 3, 6]

    def test_test_accuracy_recorded_when_test_data_given(
        self, tiny_dataset, tiny_model, full_topology_4
    ):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(
            algorithm, 3, EvaluationConfig(test_data=tiny_dataset)
        )
        assert history.final_test_accuracy is not None
        assert all(r.test_accuracy is not None for r in history.records)

    def test_no_accuracy_without_test_data(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(algorithm, 2)
        assert history.final_test_accuracy is None
        assert all(r.test_accuracy is None for r in history.records)

    def test_metadata_captured(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(algorithm, 2)
        assert history.metadata["num_agents"] == 4
        assert history.metadata["topology"] == "fully_connected"
        assert history.metadata["rounds"] == 2

    def test_progress_callback_invoked(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        calls = []
        run_decentralized(algorithm, 3, progress_callback=lambda r, rec: calls.append(r))
        assert calls == [1, 2, 3]

    def test_consensus_tracked_by_default(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(algorithm, 2)
        assert all(r.consensus is not None for r in history.records)

    def test_invalid_rounds(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        with pytest.raises(ValueError):
            run_decentralized(algorithm, 0)


class TestEvaluationConfigValidation:
    def test_invalid_eval_every(self):
        with pytest.raises(ValueError):
            EvaluationConfig(eval_every=0)

    def test_invalid_loss_samples(self):
        with pytest.raises(ValueError):
            EvaluationConfig(loss_samples_per_agent=0)

    def test_invalid_accuracy_mode(self):
        with pytest.raises(ValueError):
            EvaluationConfig(accuracy_mode="median")


class TestLearningProgress:
    def test_non_private_training_reduces_loss(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4, sigma=0.0)
        history = run_decentralized(algorithm, 25)
        assert history.losses[-1] < history.losses[0]


class TestTimingAndEvents:
    def test_wall_clock_recorded_every_evaluation(
        self, tiny_dataset, tiny_model, full_topology_4
    ):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(algorithm, 3)
        assert all(r.wall_clock_seconds is not None for r in history.records)
        assert all(r.wall_clock_seconds >= 0.0 for r in history.records)
        assert history.total_wall_clock() > 0.0

    def test_strided_evaluation_accumulates_time_and_events(
        self, tiny_dataset, tiny_model
    ):
        from repro.topology.schedule import churn_schedule
        from repro.topology.graphs import fully_connected_graph

        schedule = churn_schedule(fully_connected_graph(4), churn_rate=0.4, seed=1)
        algorithm = make_algorithm(tiny_dataset, tiny_model, schedule)
        history = run_decentralized(
            algorithm, 6, evaluation=EvaluationConfig(eval_every=3)
        )
        # Records at rounds 1, 3 and 6; the round-3 record carries round 2-3
        # events and seconds, the round-6 record rounds 4-6.
        assert [r.round for r in history.records] == [1, 3, 6]
        recorded = [e for r in history.records for e in r.topology_events]
        # Schedule rounds are 0-based; recorded events use the records'
        # 1-based numbering.
        direct = [
            {**e.as_dict(), "round": t + 1}
            for t in range(6)
            for e in schedule.events_at(t)
        ]
        assert recorded == direct
        assert all(r.active_agents is not None for r in history.records)
        for record in history.records:
            for event in record.topology_events:
                assert event["round"] <= record.round

    def test_second_run_renumbers_events_from_one(self, tiny_dataset, tiny_model):
        from repro.topology.schedule import straggler_schedule
        from repro.topology.graphs import fully_connected_graph

        schedule = straggler_schedule(
            fully_connected_graph(4), straggler_fraction=0.3, seed=0
        )
        algorithm = make_algorithm(tiny_dataset, tiny_model, schedule)
        run_decentralized(algorithm, 3)
        second = run_decentralized(algorithm, 3)
        # The schedule numbers these rounds 3..5, but within the second
        # run's history they must align with its 1-based records.
        assert [r.round for r in second.records] == [1, 2, 3]
        for record in second.records:
            for event in record.topology_events:
                assert 1 <= event["round"] <= record.round
        assert second.metadata["topology"] == "fully_connected"

    def test_stale_events_from_manual_rounds_are_discarded(
        self, tiny_dataset, tiny_model
    ):
        from repro.topology.schedule import straggler_schedule
        from repro.topology.graphs import fully_connected_graph

        schedule = straggler_schedule(
            fully_connected_graph(4), straggler_fraction=0.3, seed=0
        )
        algorithm = make_algorithm(tiny_dataset, tiny_model, schedule)
        for _ in range(2):
            algorithm.run_round()  # events buffered outside any runner
        history = run_decentralized(algorithm, 2)
        for record in history.records:
            for event in record.topology_events:
                assert 1 <= event["round"] <= record.round

    def test_static_run_has_no_events(self, tiny_dataset, tiny_model, full_topology_4):
        algorithm = make_algorithm(tiny_dataset, tiny_model, full_topology_4)
        history = run_decentralized(algorithm, 2)
        assert history.topology_events == []
        assert history.event_counts() == {}
        assert "dynamics" not in history.metadata


class TestRunSession:
    def test_stepwise_equals_one_call(self, tiny_dataset, tiny_model, full_topology_4):
        from repro.simulation.metrics import histories_equal
        from repro.simulation.runner import RunSession

        one_call = run_decentralized(
            make_algorithm(tiny_dataset, tiny_model, full_topology_4),
            4,
            EvaluationConfig(test_data=tiny_dataset),
        )
        session = RunSession(
            make_algorithm(tiny_dataset, tiny_model, full_topology_4),
            4,
            EvaluationConfig(test_data=tiny_dataset),
        )
        while not session.done:
            session.step()
        stepwise = session.finish()
        assert histories_equal(one_call, stepwise)

    def test_bus_event_sequence(self, tiny_dataset, tiny_model, full_topology_4):
        from repro.simulation.runner import RunSession

        events = []
        session = RunSession(
            make_algorithm(tiny_dataset, tiny_model, full_topology_4),
            3,
            EvaluationConfig(eval_every=2),
        )
        session.bus.subscribe(lambda event, payload: events.append(event))
        session.run()
        # rounds 1 (always recorded), 2 (eval_every), 3 (final)
        assert events == [
            "start",
            "round",
            "record",
            "round",
            "record",
            "round",
            "record",
            "finish",
        ]

    def test_checkpoint_events_and_files(
        self, tiny_dataset, tiny_model, full_topology_4, tmp_path
    ):
        from repro.simulation.checkpoint import list_checkpoints
        from repro.simulation.runner import RunSession

        checkpoints = []
        session = RunSession(
            make_algorithm(tiny_dataset, tiny_model, full_topology_4),
            5,
            checkpoint_every=2,
            checkpoint_dir=tmp_path,
        )
        session.bus.subscribe(
            lambda event, payload: checkpoints.append(payload["round"])
            if event == "checkpoint"
            else None
        )
        session.run()
        assert checkpoints == [2, 4]
        assert [p.name for p in list_checkpoints(tmp_path)] == [
            "round_000002.ckpt",
            "round_000004.ckpt",
        ]

    def test_run_max_rounds_hands_back_control(
        self, tiny_dataset, tiny_model, full_topology_4
    ):
        from repro.simulation.runner import RunSession

        session = RunSession(
            make_algorithm(tiny_dataset, tiny_model, full_topology_4), 5
        )
        partial = session.run(max_rounds=2)
        assert session.rounds_done == 2 and not session.done
        assert len(partial) == 2  # rounds 1 and 2 recorded (eval_every=1)
        session.run()
        assert session.done and len(session.history) == 5

    def test_step_after_done_raises(self, tiny_dataset, tiny_model, full_topology_4):
        from repro.simulation.runner import RunSession

        session = RunSession(
            make_algorithm(tiny_dataset, tiny_model, full_topology_4), 1
        )
        session.run()
        with pytest.raises(RuntimeError, match="already been executed"):
            session.step()

    def test_finish_before_done_raises(
        self, tiny_dataset, tiny_model, full_topology_4
    ):
        from repro.simulation.runner import RunSession

        session = RunSession(
            make_algorithm(tiny_dataset, tiny_model, full_topology_4), 3
        )
        session.run(max_rounds=1)
        with pytest.raises(RuntimeError, match="still pending"):
            session.finish()

    def test_checkpoint_every_requires_directory(
        self, tiny_dataset, tiny_model, full_topology_4
    ):
        from repro.simulation.runner import RunSession

        with pytest.raises(ValueError, match="checkpoint_dir"):
            RunSession(
                make_algorithm(tiny_dataset, tiny_model, full_topology_4),
                3,
                checkpoint_every=2,
            )

    def test_resume_rejects_incomplete_payload(
        self, tiny_dataset, tiny_model, full_topology_4
    ):
        from repro.simulation.runner import RunSession

        with pytest.raises(ValueError, match="missing"):
            RunSession.resume(
                make_algorithm(tiny_dataset, tiny_model, full_topology_4),
                {"history": {}},
            )
