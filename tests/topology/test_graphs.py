"""Tests for the topology constructors."""

import networkx as nx
import numpy as np
import pytest

from repro.topology.graphs import (
    Topology,
    bipartite_graph,
    erdos_renyi_graph,
    fully_connected_graph,
    grid_graph,
    ring_graph,
    star_graph,
)
from repro.topology.mixing import is_doubly_stochastic, is_symmetric


ALL_BUILDERS = [
    lambda: fully_connected_graph(8),
    lambda: ring_graph(8),
    lambda: bipartite_graph(8),
    lambda: star_graph(8),
    lambda: grid_graph(3, 3),
    lambda: erdos_renyi_graph(8, 0.5, seed=0),
]


@pytest.mark.parametrize("builder", ALL_BUILDERS)
def test_every_topology_has_valid_mixing_matrix(builder):
    topo = builder()
    assert is_symmetric(topo.mixing_matrix)
    assert is_doubly_stochastic(topo.mixing_matrix)


@pytest.mark.parametrize("builder", ALL_BUILDERS)
def test_every_topology_is_connected_with_positive_gap(builder):
    topo = builder()
    assert nx.is_connected(topo.graph)
    assert topo.spectral_gap > 0.0
    assert 0.0 <= topo.rho < 1.0


@pytest.mark.parametrize("builder", ALL_BUILDERS)
def test_directed_pairs_cover_all_edges_in_loop_order(builder):
    topo = builder()
    pairs = topo.directed_pairs()
    assert len(pairs) == topo.num_directed_edges
    # Grouped by agent, neighbours ascending — the loop backend's visit order.
    expected = [
        (i, j)
        for i in range(topo.num_agents)
        for j in topo.neighbors(i, include_self=False)
    ]
    assert pairs == expected
    # Symmetric graph: every directed pair appears with its reverse.
    assert set(pairs) == {(j, i) for i, j in pairs}
    assert all(i != j for i, j in pairs)


@pytest.mark.parametrize("builder", ALL_BUILDERS)
def test_neighbors_include_self_and_match_matrix(builder):
    topo = builder()
    for agent in range(topo.num_agents):
        neighbors = topo.neighbors(agent, include_self=True)
        assert agent in neighbors
        for j in neighbors:
            assert topo.weight(agent, j) > 0.0 or j == agent
        without_self = topo.neighbors(agent, include_self=False)
        assert agent not in without_self


class TestFullyConnected:
    def test_uniform_weights(self):
        topo = fully_connected_graph(5)
        np.testing.assert_allclose(topo.mixing_matrix, 1.0 / 5)

    def test_everyone_is_neighbor(self):
        topo = fully_connected_graph(6)
        assert topo.neighbors(0) == list(range(6))

    def test_spectral_gap_is_one(self):
        topo = fully_connected_graph(10)
        np.testing.assert_allclose(topo.spectral_gap, 1.0, atol=1e-10)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            fully_connected_graph(1)


class TestRing:
    def test_degree_two(self):
        topo = ring_graph(7)
        for agent in range(7):
            assert topo.degree(agent) == 2

    def test_smaller_gap_than_fully_connected(self):
        ring = ring_graph(10)
        full = fully_connected_graph(10)
        assert ring.spectral_gap < full.spectral_gap

    def test_gap_shrinks_with_size(self):
        assert ring_graph(20).spectral_gap < ring_graph(6).spectral_gap

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ring_graph(2)


class TestBipartite:
    def test_no_edges_within_sides(self):
        topo = bipartite_graph(8)
        left = set(range(4))
        for u, v in topo.edges():
            assert (u in left) != (v in left)

    def test_odd_number_of_agents(self):
        topo = bipartite_graph(7)
        assert topo.num_agents == 7

    def test_sparser_than_full_denser_than_ring(self):
        full = fully_connected_graph(10)
        bi = bipartite_graph(10)
        ring = ring_graph(10)
        assert ring.spectral_gap <= bi.spectral_gap <= full.spectral_gap + 1e-12

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            bipartite_graph(1)


class TestStarGridErdosRenyi:
    def test_star_hub_degree(self):
        topo = star_graph(6)
        degrees = sorted(topo.degree(a) for a in range(6))
        assert degrees == [1, 1, 1, 1, 1, 5]

    def test_grid_number_of_agents(self):
        topo = grid_graph(3, 4)
        assert topo.num_agents == 12

    def test_small_grid_falls_back_to_nonperiodic(self):
        topo = grid_graph(2, 2)
        assert topo.num_agents == 4
        assert topo.name in ("grid", "torus")

    def test_erdos_renyi_connected(self):
        topo = erdos_renyi_graph(12, 0.3, seed=1)
        assert nx.is_connected(topo.graph)

    def test_erdos_renyi_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(5, 0.0)

    def test_erdos_renyi_failure_when_probability_too_small(self):
        with pytest.raises(RuntimeError):
            erdos_renyi_graph(30, 0.01, seed=0, max_tries=2)


class TestTopologyValidation:
    def test_min_weight_positive(self):
        for builder in ALL_BUILDERS:
            assert builder().min_weight() > 0.0

    def test_mismatched_matrix_rejected(self):
        graph = nx.complete_graph(4)
        bad = np.full((3, 3), 1.0 / 3)
        with pytest.raises(ValueError):
            Topology(graph=graph, mixing_matrix=bad)

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_nodes_from(range(4))
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        mixing = np.array(
            [
                [0.5, 0.5, 0.0, 0.0],
                [0.5, 0.5, 0.0, 0.0],
                [0.0, 0.0, 0.5, 0.5],
                [0.0, 0.0, 0.5, 0.5],
            ]
        )
        with pytest.raises(ValueError):
            Topology(graph=graph, mixing_matrix=mixing)
