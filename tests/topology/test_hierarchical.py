"""Hierarchical (two-level) gossip: clusters, factored mixing, traffic tags."""

import numpy as np
import pytest

from repro.topology.hierarchical import (
    HierarchicalTopology,
    TwoLevelMixingOperator,
    default_cluster_size,
    hierarchical_graph,
)
from repro.topology.mixing import validate_mixing_matrix


class TestDefaultClusterSize:
    def test_scales_with_sqrt(self):
        assert default_cluster_size(16) == 4
        assert default_cluster_size(64) == 8
        assert default_cluster_size(262144) == 512

    def test_always_divides(self):
        for num_agents in (8, 12, 16, 48, 100, 1024):
            c = default_cluster_size(num_agents)
            assert num_agents % c == 0
            assert 1 <= c <= num_agents


class TestHierarchicalGraph:
    def test_builds_topology(self):
        topology = hierarchical_graph(16, cluster_size=4)
        assert isinstance(topology, HierarchicalTopology)
        assert topology.num_agents == 16
        assert topology.cluster_size == 4
        assert topology.num_clusters == 4
        assert "hierarchical" in topology.name

    def test_effective_matrix_doubly_stochastic(self):
        topology = hierarchical_graph(24, cluster_size=4)
        effective = topology.two_level_operator().effective_matrix()
        validate_mixing_matrix(effective)
        np.testing.assert_allclose(effective.sum(axis=0), 1.0, atol=1e-12)
        np.testing.assert_allclose(effective.sum(axis=1), 1.0, atol=1e-12)

    def test_rejects_non_divisor_cluster_size(self):
        with pytest.raises(ValueError):
            hierarchical_graph(16, cluster_size=5)

    def test_rejects_tiny_fleet(self):
        with pytest.raises(ValueError):
            hierarchical_graph(2)

    def test_rejects_unknown_cluster_topology(self):
        with pytest.raises(ValueError):
            hierarchical_graph(16, cluster_size=4, cluster_topology="mesh")

    def test_fully_connected_cluster_level(self):
        topology = hierarchical_graph(16, cluster_size=4, cluster_topology="fully_connected")
        effective = topology.two_level_operator().effective_matrix()
        validate_mixing_matrix(effective)

    def test_directed_edge_split(self):
        topology = hierarchical_graph(16, cluster_size=4)
        intra, inter = topology.directed_edge_split
        # Dense intra-cluster averaging: c-1 peers per agent.
        assert intra == 16 * 3
        assert inter > 0
        matrix = topology.mixing_matrix
        dense = matrix.toarray() if hasattr(matrix, "toarray") else np.asarray(matrix)
        total = int(np.count_nonzero(dense)) - 16  # minus diagonal
        assert intra + inter == total


class TestTwoLevelMixingOperator:
    def test_factored_apply_matches_effective_matrix(self, rng):
        operator = hierarchical_graph(24, cluster_size=4).two_level_operator()
        state = rng.normal(size=(24, 7))
        expected = operator.effective_matrix() @ state
        np.testing.assert_allclose(operator.apply(state), expected, atol=1e-12)

    def test_blocked_apply_bit_identical(self, rng):
        operator = hierarchical_graph(24, cluster_size=4).two_level_operator()
        state = rng.normal(size=(24, 7))
        reference = operator.apply(state)
        for block_rows in (1, 5, 24):
            np.testing.assert_array_equal(
                reference, operator.mix_rows_blocked(state, block_rows)
            )

    def test_effective_operator_agrees(self, rng):
        topology = hierarchical_graph(16, cluster_size=4)
        operator = topology.two_level_operator()
        state = rng.normal(size=(16, 3))
        np.testing.assert_allclose(
            operator.apply(state),
            operator.effective_operator().apply(state),
            atol=1e-12,
        )

    def test_consensus_contraction(self, rng):
        """Two-level gossip must shrink disagreement every application."""
        operator = hierarchical_graph(32, cluster_size=8).two_level_operator()
        state = rng.normal(size=(32, 4))
        before = np.linalg.norm(state - state.mean(axis=0))
        after_state = operator.apply(state)
        after = np.linalg.norm(after_state - after_state.mean(axis=0))
        assert after < before
        np.testing.assert_allclose(
            after_state.mean(axis=0), state.mean(axis=0), atol=1e-12
        )


class TestEngineIntegration:
    def test_traffic_split_by_tag(self):
        from repro.experiments.harness import build_algorithm, build_experiment_components
        from repro.experiments.specs import fast_spec

        spec = fast_spec(
            num_agents=16, topology="hierarchical", num_rounds=2, algorithms=["DP-DPSGD"]
        )
        algorithm = build_algorithm(
            "DP-DPSGD", build_experiment_components(spec)
        )
        for _ in range(2):
            algorithm.run_round()
        by_tag = algorithm.network.traffic_by_tag
        assert "model.intra" in by_tag and "model.inter" in by_tag
        assert by_tag["model.intra"] > 0 and by_tag["model.inter"] > 0
        assert (
            by_tag["model.intra"] + by_tag["model.inter"]
            == algorithm.network.floats_sent
        )

    def test_spec_cluster_size_respected(self):
        from repro.experiments.harness import build_experiment_components
        from repro.experiments.specs import fast_spec

        spec = fast_spec(num_agents=16, topology="hierarchical").with_updates(
            cluster_size=8
        )
        components = build_experiment_components(spec)
        assert components.topology.cluster_size == 8

    def test_cluster_size_requires_hierarchical(self):
        from repro.experiments.specs import fast_spec

        with pytest.raises(ValueError):
            fast_spec(num_agents=16, topology="ring").with_updates(cluster_size=4)
