"""Tests for mixing-matrix construction and spectral diagnostics."""

import networkx as nx
import numpy as np
import pytest

from repro.topology.mixing import (
    is_doubly_stochastic,
    is_symmetric,
    metropolis_hastings_weights,
    second_largest_eigenvalue,
    spectral_gap,
    uniform_neighbor_weights,
    validate_mixing_matrix,
)


GRAPHS = [
    nx.complete_graph(6),
    nx.cycle_graph(7),
    nx.complete_bipartite_graph(3, 4),
    nx.star_graph(5),
    nx.path_graph(5),
]


@pytest.mark.parametrize("graph", GRAPHS)
def test_metropolis_hastings_is_symmetric_doubly_stochastic(graph):
    w = metropolis_hastings_weights(graph)
    assert is_symmetric(w)
    assert is_doubly_stochastic(w)


@pytest.mark.parametrize("graph", GRAPHS)
def test_uniform_neighbor_is_symmetric_doubly_stochastic(graph):
    w = uniform_neighbor_weights(graph)
    assert is_symmetric(w)
    assert is_doubly_stochastic(w)


@pytest.mark.parametrize("graph", GRAPHS)
def test_zero_weight_exactly_on_non_edges(graph):
    w = metropolis_hastings_weights(graph)
    nodes = sorted(graph.nodes())
    for i, u in enumerate(nodes):
        for j, v in enumerate(nodes):
            if i == j:
                continue
            has_edge = graph.has_edge(u, v)
            assert (w[i, j] > 0) == has_edge


def test_metropolis_weights_formula():
    graph = nx.path_graph(3)  # degrees 1, 2, 1
    w = metropolis_hastings_weights(graph)
    np.testing.assert_allclose(w[0, 1], 1.0 / 3.0)
    np.testing.assert_allclose(w[1, 2], 1.0 / 3.0)
    np.testing.assert_allclose(w[0, 0], 2.0 / 3.0)
    np.testing.assert_allclose(w[1, 1], 1.0 / 3.0)


def test_positive_diagonal_for_connected_graphs():
    for graph in GRAPHS:
        w = metropolis_hastings_weights(graph)
        assert np.all(np.diag(w) > 0)


class TestSpectralDiagnostics:
    def test_uniform_matrix_gap_one(self):
        w = np.full((5, 5), 0.2)
        np.testing.assert_allclose(spectral_gap(w), 1.0, atol=1e-12)
        np.testing.assert_allclose(second_largest_eigenvalue(w), 0.0, atol=1e-12)

    def test_identity_matrix_gap_zero(self):
        w = np.eye(4)
        np.testing.assert_allclose(spectral_gap(w), 0.0, atol=1e-12)

    def test_largest_eigenvalue_is_one(self):
        for graph in GRAPHS:
            w = metropolis_hastings_weights(graph)
            eigenvalues = np.linalg.eigvalsh(w)
            np.testing.assert_allclose(eigenvalues.max(), 1.0, atol=1e-10)

    def test_connected_graphs_have_positive_gap(self):
        for graph in GRAPHS:
            w = metropolis_hastings_weights(graph)
            assert spectral_gap(w) > 0.0

    def test_single_node(self):
        assert second_largest_eigenvalue(np.array([[1.0]])) == 0.0


class TestValidation:
    def test_accepts_valid_matrix(self):
        w = metropolis_hastings_weights(nx.cycle_graph(5))
        validate_mixing_matrix(w, require_contraction=True)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            validate_mixing_matrix(np.ones((2, 3)) / 3)

    def test_rejects_asymmetric(self):
        w = np.array([[0.5, 0.5], [0.4, 0.6]])
        with pytest.raises(ValueError):
            validate_mixing_matrix(w)

    def test_rejects_negative_entries(self):
        w = np.array([[1.2, -0.2], [-0.2, 1.2]])
        with pytest.raises(ValueError):
            validate_mixing_matrix(w)

    def test_rejects_non_stochastic(self):
        w = np.array([[0.5, 0.2], [0.2, 0.5]])
        with pytest.raises(ValueError):
            validate_mixing_matrix(w)

    def test_contraction_requirement(self):
        identity = np.eye(3)
        validate_mixing_matrix(identity)  # fine without contraction
        with pytest.raises(ValueError):
            validate_mixing_matrix(identity, require_contraction=True)

    def test_is_doubly_stochastic_rejects_non_square(self):
        assert not is_doubly_stochastic(np.ones((2, 3)))
