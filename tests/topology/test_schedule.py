"""Unit tests for time-varying topology schedules."""

import numpy as np
import pytest

from repro.topology.graphs import ring_graph, torus_graph
from repro.topology.mixing import validate_mixing_matrix
from repro.topology.schedule import (
    DYNAMICS_KEYS,
    DynamicTopologySchedule,
    StaticSchedule,
    churn_schedule,
    edge_failure_schedule,
    periodic_rewiring_schedule,
    schedule_from_dynamics,
    straggler_schedule,
)


def edge_set(topology):
    return {tuple(sorted(edge)) for edge in topology.edges()}


class TestStaticSchedule:
    def test_returns_the_base_objects_verbatim(self):
        base = ring_graph(6)
        schedule = StaticSchedule(base)
        assert schedule.is_static
        for round_index in (0, 1, 17):
            assert schedule.topology_at(round_index) is base
            assert schedule.operator_at(round_index) is base.mixing_operator(None)
            assert schedule.active_mask_at(round_index).all()
            assert schedule.events_at(round_index) == []

    def test_respects_operator_format(self):
        base = ring_graph(6)
        schedule = StaticSchedule(base)
        assert schedule.operator_at(0, "sparse").format == "csr"
        assert schedule.operator_at(0, "dense").format == "dense"


class TestPeriodicRewiring:
    def test_epoch_zero_is_the_base_graph(self):
        base = ring_graph(8)
        schedule = periodic_rewiring_schedule(base, rewire_every=3, seed=1)
        for round_index in range(3):
            assert edge_set(schedule.topology_at(round_index)) == edge_set(base)

    def test_quiet_rounds_reuse_the_base_topology_object(self):
        # The base's mixing matrix is NOT Metropolis–Hastings; a round with
        # no deviation must serve it verbatim, not rebuild MH weights.
        import networkx as nx

        from repro.topology.graphs import Topology
        from repro.topology.mixing import uniform_neighbor_weights

        graph = nx.cycle_graph(6)
        base = Topology(
            graph=graph,
            mixing_matrix=uniform_neighbor_weights(graph),
            name="uniform_ring",
        )
        schedule = periodic_rewiring_schedule(base, rewire_every=3, seed=1)
        for round_index in range(3):
            assert schedule.topology_at(round_index) is base
        assert schedule.topology_at(3) is not base

    def test_pure_rewire_permutes_the_base_weights(self):
        # A rewire is a node relabelling: the base's (non-MH) weighting
        # scheme must survive verbatim, w'_{perm(u),perm(v)} = w_{uv}.
        import networkx as nx

        from repro.topology.graphs import Topology
        from repro.topology.mixing import (
            uniform_neighbor_weights,
            validate_mixing_matrix,
        )

        graph = nx.cycle_graph(6)
        base = Topology(
            graph=graph,
            mixing_matrix=uniform_neighbor_weights(graph),
            name="uniform_ring",
        )
        schedule = periodic_rewiring_schedule(base, rewire_every=2, seed=1)
        rewired = schedule.topology_at(2)
        assert rewired is not base
        validate_mixing_matrix(rewired.mixing_matrix)
        base_w = base.mixing_operator("dense").toarray()
        rewired_w = rewired.mixing_operator("dense").toarray()
        # Same multiset of weights, and every base edge weight reappears on
        # some relabelled edge with identical self-weights on the diagonal.
        np.testing.assert_allclose(np.sort(rewired_w.ravel()), np.sort(base_w.ravel()))
        np.testing.assert_allclose(np.sort(np.diag(rewired_w)), np.sort(np.diag(base_w)))
        perm = schedule._permutation_for_epoch(1)
        for u in range(6):
            for v in range(6):
                assert rewired_w[perm[u], perm[v]] == base_w[u, v]

    def test_rewire_changes_edges_but_preserves_structure(self):
        base = ring_graph(8)
        schedule = periodic_rewiring_schedule(base, rewire_every=3, seed=1)
        rewired = schedule.topology_at(3)
        assert edge_set(rewired) != edge_set(base)
        assert rewired.graph.number_of_edges() == base.graph.number_of_edges()
        degrees = sorted(dict(rewired.graph.degree()).values())
        assert degrees == sorted(dict(base.graph.degree()).values())
        validate_mixing_matrix(rewired.mixing_matrix)

    def test_rewire_event_emitted_at_epoch_boundaries(self):
        schedule = periodic_rewiring_schedule(ring_graph(6), rewire_every=2, seed=0)
        kinds = [
            [event.kind for event in schedule.events_at(t)] for t in range(5)
        ]
        assert kinds == [[], [], ["rewire"], [], ["rewire"]]

    def test_snapshots_are_cached_within_an_epoch(self):
        schedule = periodic_rewiring_schedule(ring_graph(12), rewire_every=5, seed=0)
        topologies = {id(schedule.topology_at(t)) for t in range(5)}
        assert len(topologies) == 1
        info = schedule.cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 4
        assert schedule.topology_at(5) is not schedule.topology_at(0)

    def test_operator_is_cached_per_snapshot(self):
        schedule = periodic_rewiring_schedule(ring_graph(12), rewire_every=5, seed=0)
        assert schedule.operator_at(0) is schedule.operator_at(4)


class TestChurn:
    def test_masks_and_events_are_consistent(self):
        schedule = churn_schedule(ring_graph(10), churn_rate=0.3, rejoin_rate=0.4, seed=2)
        previous = schedule.active_mask_at(0)
        assert previous.all()  # the fleet starts whole
        for t in range(1, 15):
            mask = schedule.active_mask_at(t)
            events = schedule.events_at(t)
            left = {e.detail["agent"] for e in events if e.kind == "leave"}
            joined = {e.detail["agent"] for e in events if e.kind == "join"}
            for agent in range(10):
                if agent in left:
                    assert previous[agent] and not mask[agent]
                elif agent in joined:
                    assert not previous[agent] and mask[agent]
                else:
                    assert mask[agent] == previous[agent]
            previous = mask

    def test_inactive_agents_get_identity_mixing_rows(self):
        schedule = churn_schedule(ring_graph(8), churn_rate=0.4, rejoin_rate=0.2, seed=0)
        for t in range(8):
            topology = schedule.topology_at(t)
            validate_mixing_matrix(topology.mixing_matrix)
            mask = schedule.active_mask_at(t)
            w = topology.mixing_operator("dense").toarray()
            for agent in np.flatnonzero(~mask):
                expected = np.zeros(8)
                expected[agent] = 1.0
                np.testing.assert_array_equal(w[agent], expected)
                assert topology.neighbors(agent, include_self=False) == []

    def test_min_active_floor_is_respected(self):
        schedule = churn_schedule(
            ring_graph(6), churn_rate=0.9, rejoin_rate=0.0, min_active=2, seed=0
        )
        for t in range(25):
            assert int(schedule.active_mask_at(t).sum()) >= 2

    def test_deterministic_in_seed_and_access_order(self):
        make = lambda: churn_schedule(ring_graph(9), churn_rate=0.25, seed=5)
        forward, backward = make(), make()
        rounds = list(range(10))
        masks_fwd = [forward.active_mask_at(t).copy() for t in rounds]
        masks_bwd = [backward.active_mask_at(t).copy() for t in reversed(rounds)][::-1]
        for a, b in zip(masks_fwd, masks_bwd):
            np.testing.assert_array_equal(a, b)


class TestEdgeFailures:
    def test_failed_edges_leave_the_round_graph_and_recover(self):
        base = torus_graph(3)
        schedule = edge_failure_schedule(base, failure_rate=0.3, recovery_rate=0.5, seed=1)
        down = set()
        for t in range(1, 12):
            for event in schedule.events_at(t):
                if event.kind == "edge_failure":
                    down.add(tuple(event.detail["edge"]))
                elif event.kind == "edge_recovery":
                    down.discard(tuple(event.detail["edge"]))
            snapshot_edges = edge_set(schedule.topology_at(t))
            assert snapshot_edges == edge_set(base) - down
            validate_mixing_matrix(schedule.topology_at(t).mixing_matrix)
        assert down  # the chain actually exercised failures


class TestStragglers:
    def test_straggler_count_follows_the_fraction(self):
        schedule = straggler_schedule(ring_graph(10), straggler_fraction=0.3, seed=0)
        for t in range(6):
            events = schedule.events_at(t)
            stragglers = [e for e in events if e.kind == "straggle"]
            assert len(stragglers) == 1
            assert len(stragglers[0].detail["agents"]) == 3  # floor(0.3 * 10)
            assert int(schedule.active_mask_at(t).sum()) == 7

    def test_straggler_draw_respects_min_active(self):
        # Churn floors membership at min_active; the straggler draw must not
        # push the round's participation below that floor either.
        schedule = DynamicTopologySchedule(
            ring_graph(6),
            churn_rate=0.5,
            rejoin_rate=0.0,
            straggler_fraction=0.5,
            min_active=4,
            seed=0,
        )
        for t in range(20):
            assert int(schedule.active_mask_at(t).sum()) >= 4

    def test_straggling_is_per_round(self):
        schedule = straggler_schedule(ring_graph(10), straggler_fraction=0.2, seed=3)
        masks = {schedule.active_mask_at(t).tobytes() for t in range(10)}
        assert len(masks) > 1  # a fresh draw each round


class TestValidationAndFactory:
    def test_parameter_validation(self):
        base = ring_graph(5)
        with pytest.raises(ValueError):
            DynamicTopologySchedule(base, rewire_every=0)
        with pytest.raises(ValueError):
            DynamicTopologySchedule(base, churn_rate=1.5)
        with pytest.raises(ValueError):
            DynamicTopologySchedule(base, straggler_fraction=1.0)
        with pytest.raises(ValueError):
            DynamicTopologySchedule(base, min_active=0)
        with pytest.raises(ValueError):
            DynamicTopologySchedule(base, cache_size=0)

    def test_schedule_from_dynamics(self):
        base = ring_graph(5)
        assert isinstance(schedule_from_dynamics(base, None), StaticSchedule)
        assert isinstance(schedule_from_dynamics(base, {}), StaticSchedule)
        dynamic = schedule_from_dynamics(
            base, {"rewire_every": 4, "churn_rate": 0.05}, seed=9
        )
        assert isinstance(dynamic, DynamicTopologySchedule)
        assert dynamic.rewire_every == 4
        assert dynamic.churn_rate == 0.05
        assert dynamic.seed == 9

    def test_schedule_from_dynamics_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown dynamics keys"):
            schedule_from_dynamics(ring_graph(5), {"rewire_evry": 4})

    def test_validate_dynamics_checks_value_ranges(self):
        from repro.topology.schedule import validate_dynamics

        validate_dynamics({"churn_rate": 0.5, "rewire_every": 3})
        with pytest.raises(ValueError, match="churn_rate"):
            validate_dynamics({"churn_rate": 2.0})
        with pytest.raises(ValueError, match="straggler_fraction"):
            validate_dynamics({"straggler_fraction": 1.5})
        with pytest.raises(ValueError, match="rewire_every"):
            validate_dynamics({"rewire_every": 0})

    def test_dynamics_keys_vocabulary(self):
        assert "churn_rate" in DYNAMICS_KEYS
        assert "straggler_fraction" in DYNAMICS_KEYS

    def test_describe_is_serialisable(self):
        import json

        dynamic = schedule_from_dynamics(
            ring_graph(5), {"churn_rate": 0.1, "seed": 3}
        )
        payload = json.loads(json.dumps(dynamic.describe()))
        assert payload["churn_rate"] == 0.1
        assert payload["seed"] == 3

    def test_lru_eviction_bounds_the_cache(self):
        schedule = churn_schedule(ring_graph(8), churn_rate=0.4, seed=1, cache_size=4)
        for t in range(20):
            schedule.topology_at(t)
        assert schedule.cache_info()["size"] <= 4

    def test_round_states_stay_bounded_and_replayable(self):
        # The round-state chain keeps a bounded LRU plus sparse checkpoints;
        # states evicted from both must be recomputed bit-for-bit, so a
        # second consumer replaying the schedule from round 0 (as
        # run_comparison's later algorithms do) sees the same trajectory.
        def make():
            return DynamicTopologySchedule(
                ring_graph(8),
                rewire_every=3,
                churn_rate=0.25,
                rejoin_rate=0.4,
                straggler_fraction=0.2,
                seed=5,
            )

        reference = make()
        expected = [reference.active_mask_at(t).copy() for t in range(30)]

        evicting = make()
        evicting._recent_capacity = 4  # force heavy eviction
        for t in range(30):
            np.testing.assert_array_equal(evicting.active_mask_at(t), expected[t])
        assert len(evicting._recent_states) <= 4
        # Replay from the start after eviction (the shared-schedule pattern).
        for t in range(30):
            np.testing.assert_array_equal(evicting.active_mask_at(t), expected[t])
            assert [e.as_dict() for e in evicting.events_at(t)] == [
                e.as_dict() for e in reference.events_at(t)
            ]
