"""Sparse (CSR) mixing backend: builders, validation, operators, diagnostics.

The CSR path must be a pure storage optimisation: edge-wise builders agree
with the dense builders, validation checks the same Assumption 3 structure
without densifying, and the dense and CSR :class:`MixingOperator` kernels
produce bit-identical gossip results for the same matrix.
"""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.topology.graphs import (
    Topology,
    exponential_graph,
    hypercube_graph,
    random_regular_graph,
    ring_graph,
    small_world_graph,
    torus_graph,
)
from repro.topology.mixing import (
    AUTO_SPARSE_MIN_AGENTS,
    DENSE_EIG_MAX_AGENTS,
    MixingOperator,
    is_doubly_stochastic,
    is_symmetric,
    metropolis_hastings_weights,
    preferred_mixing_format,
    second_largest_eigenvalue,
    spectral_gap,
    uniform_neighbor_weights,
    validate_mixing_matrix,
)

GRAPHS = [
    nx.cycle_graph(12),
    nx.grid_2d_graph(4, 4, periodic=True),
    nx.star_graph(9),
    nx.path_graph(7),
    nx.erdos_renyi_graph(20, 0.3, seed=0),
]


@pytest.mark.parametrize("graph", GRAPHS)
@pytest.mark.parametrize("builder", [metropolis_hastings_weights, uniform_neighbor_weights])
class TestCsrBuilders:
    def test_matches_dense_builder(self, builder, graph):
        dense = builder(graph)
        sparse = builder(graph, sparse=True)
        assert sp.issparse(sparse)
        np.testing.assert_allclose(sparse.toarray(), dense, atol=1e-12)

    def test_csr_satisfies_assumption3(self, builder, graph):
        sparse = builder(graph, sparse=True)
        assert is_symmetric(sparse)
        assert is_doubly_stochastic(sparse)
        validate_mixing_matrix(sparse)

    def test_zero_weight_exactly_on_non_edges(self, builder, graph):
        sparse = builder(graph, sparse=True)
        dense = sparse.toarray()
        nodes = sorted(graph.nodes())
        index = {node: k for k, node in enumerate(nodes)}
        for u in nodes:
            for v in nodes:
                if u == v:
                    continue
                assert (dense[index[u], index[v]] > 0) == graph.has_edge(u, v)


class TestCsrValidation:
    def test_rejects_asymmetric_csr(self):
        w = sp.csr_array(np.array([[0.5, 0.5, 0.0], [0.4, 0.2, 0.4], [0.1, 0.3, 0.6]]))
        assert not is_symmetric(w)
        with pytest.raises(ValueError, match="symmetric"):
            validate_mixing_matrix(w)

    def test_rejects_non_stochastic_csr(self):
        w = sp.csr_array(np.array([[0.5, 0.2], [0.2, 0.5]]))
        assert not is_doubly_stochastic(w)
        with pytest.raises(ValueError, match="stochastic"):
            validate_mixing_matrix(w)

    def test_rejects_negative_entries_csr(self):
        w = sp.csr_array(np.array([[1.2, -0.2], [-0.2, 1.2]]))
        with pytest.raises(ValueError, match="stochastic"):
            validate_mixing_matrix(w)

    def test_rejects_non_square_csr(self):
        w = sp.csr_array(np.ones((2, 3)) / 3.0)
        with pytest.raises(ValueError, match="square"):
            validate_mixing_matrix(w)

    def test_validation_never_densifies(self):
        # A 100k-agent ring: the dense matrix would be 10^10 entries (~80 GB),
        # so merely finishing proves the checks stay on the sparse structure.
        graph = nx.cycle_graph(100_000)
        w = metropolis_hastings_weights(graph, sparse=True)
        validate_mixing_matrix(w)
        assert w.nnz == 3 * 100_000

    def test_contraction_check_on_csr(self):
        w = metropolis_hastings_weights(nx.cycle_graph(11), sparse=True)
        validate_mixing_matrix(w, require_contraction=True)
        disconnected = sp.csr_array(sp.eye(5).tocsr())
        with pytest.raises(ValueError, match="spectral gap"):
            validate_mixing_matrix(disconnected, require_contraction=True)


class TestSpectralDiagnostics:
    def test_eigsh_matches_dense_path(self):
        # Same matrix through both code paths: dense eigvalsh below the
        # threshold, Lanczos above it (forced by a graph larger than
        # DENSE_EIG_MAX_AGENTS).
        n = DENSE_EIG_MAX_AGENTS + 64
        w = metropolis_hastings_weights(nx.cycle_graph(n), sparse=True)
        lanczos = second_largest_eigenvalue(w)
        dense = np.linalg.eigvalsh(w.toarray())
        expected = float(np.sort(np.abs(dense))[::-1][1])
        assert lanczos == pytest.approx(expected, abs=1e-8)

    def test_eigsh_matches_analytic_ring_value(self):
        n = 2048
        w = metropolis_hastings_weights(nx.cycle_graph(n), sparse=True)
        # Ring MH weights are (1 + 2 cos(2 pi k / n)) / 3; the second-largest
        # magnitude is attained at k = 1.
        analytic = (1.0 + 2.0 * np.cos(2.0 * np.pi / n)) / 3.0
        assert second_largest_eigenvalue(w) == pytest.approx(analytic, abs=1e-8)
        assert 0.0 < spectral_gap(w) < 1e-4

    def test_eigsh_accepts_dense_storage_above_threshold(self):
        n = DENSE_EIG_MAX_AGENTS + 32
        w = metropolis_hastings_weights(nx.cycle_graph(n))
        assert isinstance(w, np.ndarray)
        assert spectral_gap(w) > 0.0


class TestMixingOperator:
    def test_dense_and_csr_apply_bit_identical(self):
        for graph in GRAPHS:
            w = metropolis_hastings_weights(graph)
            dense_op = MixingOperator(w)
            csr_op = MixingOperator(sp.csr_array(w))
            rows = np.random.default_rng(0).normal(size=(w.shape[0], 23))
            np.testing.assert_array_equal(dense_op.apply(rows), csr_op.apply(rows))

    def test_apply_matches_matmul_semantics(self):
        w = metropolis_hastings_weights(nx.cycle_graph(9))
        rows = np.random.default_rng(1).normal(size=(9, 5))
        for op in (MixingOperator(w), MixingOperator(sp.csr_array(w))):
            np.testing.assert_allclose(op.apply(rows), w @ rows, atol=1e-12)

    def test_shape_mismatch_rejected(self):
        op = MixingOperator(metropolis_hastings_weights(nx.cycle_graph(6)))
        with pytest.raises(ValueError, match="stack of agent rows"):
            op.apply(np.zeros((5, 3)))

    def test_metadata(self):
        w = metropolis_hastings_weights(nx.cycle_graph(10), sparse=True)
        op = MixingOperator(w)
        assert op.format == "csr"
        assert op.num_agents == 10
        assert op.nnz == 30
        assert op.density == pytest.approx(0.3)
        assert MixingOperator(w.toarray()).format == "dense"


class TestFormatSelection:
    def test_small_fleets_stay_dense(self):
        assert preferred_mixing_format(8, 24) == "dense"
        assert ring_graph(8).mixing_operator().format == "dense"

    def test_large_sparse_fleets_use_csr(self):
        n = AUTO_SPARSE_MIN_AGENTS
        assert preferred_mixing_format(n, 3 * n) == "csr"
        topology = ring_graph(4 * n)
        assert topology.mixing_is_sparse
        assert topology.mixing_operator().format == "csr"

    def test_dense_graphs_stay_dense_at_any_size(self):
        # Density above the threshold keeps the dense kernel even for big fleets.
        assert preferred_mixing_format(1024, 1024 * 1024) == "dense"

    def test_explicit_override(self):
        topology = ring_graph(10)
        assert topology.mixing_operator("sparse").format == "csr"
        assert topology.mixing_operator("csr").format == "csr"
        assert topology.mixing_operator("dense").format == "dense"
        with pytest.raises(ValueError, match="mixing format"):
            topology.mixing_operator("blocked")

    def test_format_conversions_preserve_entries_exactly(self):
        topology = ring_graph(50)
        dense = topology.mixing_operator("dense").matrix
        csr = topology.mixing_operator("csr").matrix
        np.testing.assert_array_equal(csr.toarray(), dense)


class TestSparseTopology:
    """Topology accessors must behave identically under either storage."""

    @pytest.fixture()
    def twins(self):
        graph = nx.convert_node_labels_to_integers(
            nx.erdos_renyi_graph(30, 0.2, seed=3), ordering="sorted"
        )
        dense = Topology(graph, metropolis_hastings_weights(graph), name="dense")
        sparse = Topology(
            graph.copy(), metropolis_hastings_weights(graph, sparse=True), name="sparse"
        )
        return dense, sparse

    def test_neighbors_agree(self, twins):
        dense, sparse = twins
        assert sparse.mixing_is_sparse and not dense.mixing_is_sparse
        for agent in range(dense.num_agents):
            assert dense.neighbors(agent) == sparse.neighbors(agent)
            assert dense.neighbors(agent, include_self=False) == sparse.neighbors(
                agent, include_self=False
            )

    def test_weights_and_pairs_agree(self, twins):
        dense, sparse = twins
        assert dense.directed_pairs() == sparse.directed_pairs()
        assert dense.num_directed_edges == sparse.num_directed_edges
        for i, j in dense.directed_pairs():
            assert dense.weight(i, j) == pytest.approx(sparse.weight(i, j), abs=1e-15)
        assert dense.min_weight() == pytest.approx(sparse.min_weight(), abs=1e-15)

    def test_spectral_properties_agree(self, twins):
        dense, sparse = twins
        assert dense.rho == pytest.approx(sparse.rho, abs=1e-10)
        assert dense.spectral_gap == pytest.approx(sparse.spectral_gap, abs=1e-10)

    def test_invalid_sparse_matrix_rejected(self):
        graph = nx.cycle_graph(5)
        bad = sp.csr_array(np.eye(5) * 0.9)
        with pytest.raises(ValueError, match="stochastic"):
            Topology(graph, bad)


class TestLargeGraphConstructors:
    def test_torus_is_4_regular(self):
        topology = torus_graph(8)
        assert topology.num_agents == 64
        assert topology.name == "torus"
        assert all(topology.degree(a) == 4 for a in range(64))
        assert topology.mixing_is_sparse

    def test_torus_rectangular_and_validation(self):
        assert torus_graph(3, 5).num_agents == 15
        with pytest.raises(ValueError):
            torus_graph(2)

    def test_random_regular_degree_and_connectivity(self):
        topology = random_regular_graph(64, degree=6, seed=1)
        assert topology.name == "random_regular"
        assert all(topology.degree(a) == 6 for a in range(64))
        assert topology.spectral_gap > 0.0
        with pytest.raises(ValueError):
            random_regular_graph(9, degree=3)  # odd product

    def test_small_world_shortcut_gap(self):
        ring = ring_graph(128)
        small_world = small_world_graph(128, nearest_neighbors=4, rewire_probability=0.2, seed=0)
        assert small_world.name == "small_world"
        # Shortcuts must mix strictly faster than the plain ring.
        assert small_world.spectral_gap > ring.spectral_gap

    def test_hypercube_structure(self):
        topology = hypercube_graph(6)
        assert topology.num_agents == 64
        assert topology.name == "hypercube"
        assert all(topology.degree(a) == 6 for a in range(64))
        for i, j in topology.graph.edges():
            assert bin(i ^ j).count("1") == 1

    def test_exponential_degree_is_logarithmic(self):
        topology = exponential_graph(64)
        assert topology.name == "exponential"
        # Neighbours at hops 1, 2, 4, ..., 32 in both directions; the +/-32
        # hops coincide, giving 11 distinct neighbours.
        assert topology.degree(0) == 11
        assert topology.spectral_gap > ring_graph(64).spectral_gap

    def test_all_constructors_validate(self):
        for topology in [
            torus_graph(4),
            random_regular_graph(16, 4),
            small_world_graph(16),
            hypercube_graph(4),
            exponential_graph(16),
        ]:
            validate_mixing_matrix(topology.mixing_matrix)
            assert nx.is_connected(topology.graph)
